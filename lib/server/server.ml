(* The long-running endpoint: an accept thread feeding a bounded queue
   of connections to a small pool of worker threads. Robustness over
   raw speed: every request runs under a private budget carved from the
   admission controller, overload is shed promptly at three watermarks
   (queue depth at accept, in-flight count, global token bucket), every
   socket operation has a deadline, and SIGINT/SIGTERM drains —
   stop accepting, cancel in-flight budgets, flush the final stats. *)

module Budget = Resource.Budget
module Engine = Wd_core.Engine
module Plan_cache = Wd_core.Plan_cache
module Pebble_cache = Wd_core.Pebble_cache
module Json = Analysis.Json
module Canonical = Analysis.Canonical
module Prune = Analysis.Prune
module E = Wdsparql_error

type config = {
  graph : Rdf.Graph.t;
  reload : (unit -> Rdf.Graph.t) option;
      (* re-resolve the graph (e.g. re-discover a store's delta
         segments); run by a worker between requests on [request_reload] *)
  host : string;
  port : int;  (* 0 = ephemeral, see [port] *)
  workers : int;
  domains : int;  (* parallelism inside one evaluation *)
  queue_capacity : int;
  admission : Admission.config;
  max_request_bytes : int;
  io_timeout : float;
  faults : Faults.t;
  plan_capacity : int;  (* distinct cached query plans *)
}

(* One cached query plan, shared by every connection whose query has the
   same {e canonical form} ({!Analysis.Canonical}) against the same
   store epoch — alpha-variants and reordered conjuncts hit the same
   entry. The plan is compiled from the canonical (pruned) pattern, so
   its solutions bind canonical variable names; each request renames
   them back through its own bijection. The analyzer's width hints are
   computed once, when the entry is built, and persist in [plan] for
   all later requests — the cross-call hint persistence the CLI lacks.
   [lock] serializes evaluations of this entry (the underlying
   Plan_cache is single-writer); distinct queries evaluate
   concurrently. *)
type plan_entry = {
  plan : Engine.plan;
  lock : Mutex.t;
  first_query : string;
      (* raw text of the query that built the entry: a later hit with
         different text is a cross-query canonical hit, counted apart *)
  mutable poisoned : bool;  (* fault injection: next use fails + evicts *)
  mutable last_used : int;  (* LRU stamp *)
}

type job = Io.conn * int * Faults.kind option

type t = {
  config : config;
  listener : Unix.file_descr;
  port : int;
  started_at : float;
  stop : bool Atomic.t;
  graph : Rdf.Graph.t Atomic.t;
      (* the graph requests snapshot; swapped whole by a reload, so
         in-flight evaluations keep the store they started on *)
  reload_pending : bool Atomic.t;
  reloads : int Atomic.t;
  reload_failures : int Atomic.t;
  queue : job Queue.t;
  queue_lock : Mutex.t;
  next_index : int Atomic.t;  (* 1-based request index, accept order *)
  admission : Admission.t;
  active : (int, Budget.t) Hashtbl.t;  (* in-flight budgets, for drain *)
  active_lock : Mutex.t;
  plans : (string, plan_entry) Hashtbl.t;  (* key: query text @ epoch *)
  plans_lock : Mutex.t;
  plan_stamp : int Atomic.t;
  mutable plans_retired : Plan_cache.stats;  (* under plans_lock *)
  plans_compiled : int Atomic.t;
  plan_hits : int Atomic.t;
  canonical_hits : int Atomic.t;
      (* plan-cache hits where the raw query text differed from the text
         that built the entry: value delivered by canonicalization alone *)
  plan_evictions : int Atomic.t;
  responses : (int * int Atomic.t) list;
  disconnects : int Atomic.t;  (* no response: peer gone or write failed *)
  fault_counts : (Faults.kind * int Atomic.t) list;
  shed_queue : int Atomic.t;
  workers_done : int Atomic.t;
  mutable accept_thread : Thread.t option;
  mutable worker_threads : Thread.t list;
}

(* ------------------------------------------------------------------ *)
(* Stats plumbing                                                      *)
(* ------------------------------------------------------------------ *)

let zero_pebble =
  {
    Pebble_cache.hits = 0;
    misses = 0;
    compiled = 0;
    families = 0;
    evictions = 0;
    unary_hits = 0;
    unary_misses = 0;
  }

let zero_plan_stats =
  {
    Plan_cache.pebble = zero_pebble;
    hom_sources = 0;
    invalidations = 0;
    plan_evictions = 0;
    live_entries = 0;
    decision_hits = 0;
    decision_misses = 0;
  }

let add_pebble (a : Pebble_cache.stats) (b : Pebble_cache.stats) =
  {
    Pebble_cache.hits = a.hits + b.hits;
    misses = a.misses + b.misses;
    compiled = a.compiled + b.compiled;
    families = a.families + b.families;
    evictions = a.evictions + b.evictions;
    unary_hits = a.unary_hits + b.unary_hits;
    unary_misses = a.unary_misses + b.unary_misses;
  }

let add_plan_stats (a : Plan_cache.stats) (b : Plan_cache.stats) =
  {
    Plan_cache.pebble = add_pebble a.pebble b.pebble;
    hom_sources = a.hom_sources + b.hom_sources;
    invalidations = a.invalidations + b.invalidations;
    plan_evictions = a.plan_evictions + b.plan_evictions;
    live_entries = a.live_entries + b.live_entries;
    decision_hits = a.decision_hits + b.decision_hits;
    decision_misses = a.decision_misses + b.decision_misses;
  }

let tracked_statuses = [ 200; 400; 404; 405; 408; 413; 422; 500; 503 ]

let count_status t status =
  match List.assoc_opt status t.responses with
  | Some a -> Atomic.incr a
  | None -> ()

let count_fault t = function
  | None -> ()
  | Some k -> Atomic.incr (List.assoc k t.fault_counts)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create config =
  if config.workers <= 0 then
    invalid_arg "Server.create: workers must be positive";
  if config.queue_capacity <= 0 then
    invalid_arg "Server.create: queue_capacity must be positive";
  if config.plan_capacity <= 0 then
    invalid_arg "Server.create: plan_capacity must be positive";
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let port =
    try
      Unix.setsockopt listener Unix.SO_REUSEADDR true;
      Unix.bind listener
        (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
      Unix.listen listener 128;
      match Unix.getsockname listener with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    with e ->
      (try Unix.close listener with Unix.Unix_error _ -> ());
      raise e
  in
  {
    config;
    listener;
    port;
    started_at = Unix.gettimeofday ();
    stop = Atomic.make false;
    graph = Atomic.make config.graph;
    reload_pending = Atomic.make false;
    reloads = Atomic.make 0;
    reload_failures = Atomic.make 0;
    queue = Queue.create ();
    queue_lock = Mutex.create ();
    next_index = Atomic.make 1;
    admission = Admission.create config.admission;
    active = Hashtbl.create 64;
    active_lock = Mutex.create ();
    plans = Hashtbl.create 64;
    plans_lock = Mutex.create ();
    plan_stamp = Atomic.make 0;
    plans_retired = zero_plan_stats;
    plans_compiled = Atomic.make 0;
    plan_hits = Atomic.make 0;
    canonical_hits = Atomic.make 0;
    plan_evictions = Atomic.make 0;
    responses = List.map (fun s -> (s, Atomic.make 0)) tracked_statuses;
    disconnects = Atomic.make 0;
    fault_counts =
      List.map (fun k -> (k, Atomic.make 0)) Faults.all;
    shed_queue = Atomic.make 0;
    workers_done = Atomic.make 0;
    accept_thread = None;
    worker_threads = [];
  }

let port t = t.port
let draining t = Atomic.get t.stop

(* ------------------------------------------------------------------ *)
(* The query-plan cache                                                *)
(* ------------------------------------------------------------------ *)

(* Keyed on the snapshot's epoch and the query's canonical rendering
   (the full key, not its hash — collision-free by construction): after
   a reload the new store has a new identity, so stale plans age out of
   the LRU instead of answering; within an epoch, alpha-variant and
   reordered spellings of one query share a single compiled plan. *)
let plan_key graph (canon : Canonical.t) =
  Printf.sprintf "%d#%s" (Rdf.Graph.epoch graph) canon.Canonical.key

(* Retire an entry's accumulated counters so the /stats totals stay
   monotonic across evictions (mirrors Plan_cache's own retired
   accumulator one level up). Call with [plans_lock] held. *)
let retire_entry t e =
  Atomic.incr t.plan_evictions;
  t.plans_retired <-
    add_plan_stats t.plans_retired (Plan_cache.stats e.plan.Engine.cache)

let evict_entry t key =
  Mutex.lock t.plans_lock;
  (match Hashtbl.find_opt t.plans key with
  | Some e ->
      Hashtbl.remove t.plans key;
      retire_entry t e
  | None -> ());
  Mutex.unlock t.plans_lock

let compile_plan ~budget pattern =
  (* The pattern is canonical; plan its pruned residual — unsatisfiable
     OPT arms, dead UNION branches and duplicate triples never reach the
     planner. An empty residual means the query is unsatisfiable; plan
     the unpruned pattern (it yields nothing) rather than special-casing
     an always-empty entry. *)
  let pattern =
    match (Prune.run pattern).Prune.outcome with
    | Prune.Pattern residual -> residual
    | Prune.Empty -> pattern
  in
  (* Static width estimation up front, persisted with the entry: the
     exact dw it measures lets [Engine.plan] skip its own exponential
     recomputation for every later request of the same query. *)
  let hints =
    if Sparql.Algebra.is_core pattern then
      Analysis.Width_est.hints
        (Analysis.Width_est.estimate ~budget
           (Wdpt.Pattern_forest.of_algebra pattern))
    else Engine.no_hints
  in
  Engine.plan ~budget ~hints ~plan_capacity:1 pattern

let plan_entry_for t ~graph ~budget query =
  (* Parse and canonicalize before the cache probe: the key is the
     canonical form, so hits no longer depend on the query's spelling.
     Both are cheap next to a compile, and parsing stays outside the
     lock either way. *)
  let pattern =
    match Sparql.Parser.parse query with
    | Ok p -> p
    | Error msg ->
        E.fail (E.Parse_error { source = "query"; line = 0; col = 0; msg })
  in
  let canon = Canonical.of_pattern pattern in
  let key = plan_key graph canon in
  let stamp () = Atomic.fetch_and_add t.plan_stamp 1 in
  let count_hit e =
    Atomic.incr t.plan_hits;
    if not (String.equal e.first_query query) then
      Atomic.incr t.canonical_hits
  in
  Mutex.lock t.plans_lock;
  match Hashtbl.find_opt t.plans key with
  | Some e ->
      e.last_used <- stamp ();
      count_hit e;
      Mutex.unlock t.plans_lock;
      (key, e, canon)
  | None -> (
      Mutex.unlock t.plans_lock;
      (* compile outside the lock — compilation can be expensive and
         must not stall requests for other queries *)
      let plan = compile_plan ~budget canon.Canonical.pattern in
      Atomic.incr t.plans_compiled;
      let fresh =
        { plan; lock = Mutex.create (); first_query = query;
          poisoned = false; last_used = stamp () }
      in
      Mutex.lock t.plans_lock;
      match Hashtbl.find_opt t.plans key with
      | Some e ->
          (* lost a compile race: use the winner, drop ours silently *)
          e.last_used <- stamp ();
          count_hit e;
          Mutex.unlock t.plans_lock;
          (key, e, canon)
      | None ->
          Hashtbl.replace t.plans key fresh;
          if Hashtbl.length t.plans > t.config.plan_capacity then begin
            (* evict the least recently used entry *)
            let lru =
              Hashtbl.fold
                (fun k e acc ->
                  match acc with
                  | Some (_, best) when best.last_used <= e.last_used -> acc
                  | _ -> Some (k, e))
                t.plans None
            in
            match lru with
            | Some (k, e) ->
                Hashtbl.remove t.plans k;
                retire_entry t e
            | None -> ()
          end;
          Mutex.unlock t.plans_lock;
          (key, fresh, canon))

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let error_payload ~draining e =
  let base kind = [ ("kind", Json.String kind);
                    ("message", Json.String (E.to_string e)) ] in
  let status, fields =
    match e with
    | E.Parse_error _ -> (400, base "parse_error")
    | E.Not_well_designed _ -> (422, base "not_well_designed")
    | E.Budget_exhausted { phase; spent } ->
        if draining then
          (503, base "draining" @ [ ("phase", Json.String phase) ])
        else
          ( 408,
            base "budget_exhausted"
            @ [ ("phase", Json.String phase); ("spent", Json.Int spent) ] )
    | E.Io_error _ -> (500, base "io_error")
    | E.Store_error _ -> (500, base "store_error")
    | E.Invalid_input _ -> (400, base "invalid_input")
    | E.Internal _ -> (500, base "internal")
  in
  (status, Json.to_string (Json.Obj [ ("error", Json.Obj fields) ]))

let simple_error kind status message =
  ( status,
    Json.to_string
      (Json.Obj
         [ ("error",
            Json.Obj
              [ ("kind", Json.String kind);
                ("message", Json.String message) ]) ]) )

(* Send a response and keep the books; a peer that vanished mid-write
   counts as a disconnect, not a served status. *)
let respond t conn ~deadline ?headers ~status body =
  match Http.respond ?headers conn ~deadline ~status body with
  | () -> count_status t status
  | exception (Io.Timeout | Io.Disconnected) -> Atomic.incr t.disconnects

(* The plan's solutions bind canonical variable names; [canon] is the
   requesting query's bijection, renaming heads and bindings back to the
   names the client wrote. *)
let results_json ~canon plan answers =
  let vars =
    List.map
      (Canonical.original_var canon)
      (Rdf.Variable.Set.elements (Wdpt.Pattern_forest.vars plan.Engine.forest))
    |> List.sort_uniq Rdf.Variable.compare
  in
  let binding mu =
    Json.Obj
      (List.map
         (fun (v, iri) ->
           ( Rdf.Variable.to_string v,
             Json.Obj
               [ ("type", Json.String "uri");
                 ("value", Json.String (Rdf.Iri.to_string iri)) ] ))
         (Sparql.Mapping.to_list (Canonical.rename_back canon mu)))
  in
  Json.Obj
    [ ( "head",
        Json.Obj
          [ ( "vars",
              Json.List
                (List.map
                   (fun v -> Json.String (Rdf.Variable.to_string v))
                   vars) ) ] );
      ( "results",
        Json.Obj
          [ ( "bindings",
              Json.List
                (List.map binding (Sparql.Mapping.Set.elements answers)) ) ]
      ) ]

let query_of_request req =
  match List.assoc_opt "query" req.Http.query with
  | Some q -> Some q
  | None when req.meth = "POST" ->
      let ct =
        Option.value ~default:"" (Http.header "content-type" req)
      in
      let is_prefix p =
        String.length ct >= String.length p
        && String.lowercase_ascii (String.sub ct 0 (String.length p)) = p
      in
      if req.body = "" then None
      else begin
        (* a form body without a [query] field (curl --data with raw
           query text gets the form content type by default) falls back
           to the raw-body reading *)
        let from_form =
          if is_prefix "application/x-www-form-urlencoded" then
            match Http.parse_query req.body with
            | pairs -> List.assoc_opt "query" pairs
            | exception Http.Malformed _ -> None
          else None
        in
        match from_form with Some q -> Some q | None -> Some req.body
      end
  | None -> None

(* Classify what escapes a request's evaluation. *)
let attempt f =
  match f () with
  | v -> Ok v
  | exception E.Error e -> Error e
  | exception Budget.Exhausted { phase; spent } ->
      Error (E.Budget_exhausted { phase; spent })
  | exception Wdpt.Translate.Not_well_designed v ->
      Error
        (E.Not_well_designed (Fmt.str "%a" Sparql.Well_designed.pp_violation v))

(* Admit, register for drain cancellation, run, release — on all
   paths. *)
let with_admission t ~idx ~starve f =
  if Atomic.get t.stop then `Draining
  else
    match Admission.try_admit ~starve t.admission with
    | Error (reason, retry) -> `Shed (reason, retry)
    | Ok lease ->
        Mutex.lock t.active_lock;
        Hashtbl.replace t.active idx lease.budget;
        Mutex.unlock t.active_lock;
        let finally () =
          Mutex.lock t.active_lock;
          Hashtbl.remove t.active idx;
          Mutex.unlock t.active_lock;
          Admission.release t.admission lease
        in
        `Ran (Fun.protect ~finally (fun () -> attempt (fun () -> f lease.budget)))

let retry_after retry =
  [ ("Retry-After", string_of_int (max 1 (int_of_float (Float.ceil retry)))) ]

let shed_response reason retry =
  let why =
    match reason with
    | Admission.Inflight_watermark -> "in-flight watermark reached"
    | Admission.Budget_watermark -> "global budget exhausted"
  in
  simple_error "overloaded" 503 ("request shed: " ^ why)
  |> fun (status, body) -> (status, body, retry_after retry)

let handle_sparql t conn ~deadline ~idx ~fault req =
  match query_of_request req with
  | None ->
      let status, body =
        simple_error "invalid_input" 400 "missing query parameter"
      in
      respond t conn ~deadline ~status body
  | Some query -> (
      let starve = fault = Some Faults.Starve in
      let outcome =
        with_admission t ~idx ~starve @@ fun budget ->
        (* one snapshot per request: the plan key and the evaluation see
           the same store even if a reload lands mid-request *)
        let graph = Atomic.get t.graph in
        let key, entry, canon = plan_entry_for t ~graph ~budget query in
        if fault = Some Faults.Poison then entry.poisoned <- true;
        Mutex.lock entry.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock entry.lock)
          (fun () ->
            if entry.poisoned then begin
              evict_entry t key;
              E.fail (E.Internal "poisoned plan-cache entry (injected)")
            end;
            let answers =
              Engine.solutions ~budget ~domains:t.config.domains entry.plan
                graph
            in
            Json.to_string (results_json ~canon entry.plan answers))
      in
      match outcome with
      | `Draining ->
          let status, body =
            simple_error "draining" 503 "server is draining"
          in
          respond t conn ~deadline ~headers:(retry_after 1.) ~status body
      | `Shed (reason, retry) ->
          let status, body, headers = shed_response reason retry in
          respond t conn ~deadline ~headers ~status body
      | `Ran (Ok body) -> respond t conn ~deadline ~status:200 body
      | `Ran (Error e) ->
          let status, body =
            error_payload ~draining:(Atomic.get t.stop) e
          in
          respond t conn ~deadline ~status body)

let handle_analyze t conn ~deadline ~idx ~fault req =
  match query_of_request req with
  | None ->
      let status, body =
        simple_error "invalid_input" 400 "missing query parameter"
      in
      respond t conn ~deadline ~status body
  | Some query -> (
      let starve = fault = Some Faults.Starve in
      let outcome =
        with_admission t ~idx ~starve @@ fun budget ->
        match
          Analysis.Analyzer.of_source ~graph:(Atomic.get t.graph) ~budget
            ~source:"query" query
        with
        | Ok report -> Json.to_string (Analysis.Analyzer.to_json report)
        | Error e -> E.fail e
      in
      match outcome with
      | `Draining ->
          let status, body =
            simple_error "draining" 503 "server is draining"
          in
          respond t conn ~deadline ~headers:(retry_after 1.) ~status body
      | `Shed (reason, retry) ->
          let status, body, headers = shed_response reason retry in
          respond t conn ~deadline ~headers ~status body
      | `Ran (Ok body) -> respond t conn ~deadline ~status:200 body
      | `Ran (Error e) ->
          let status, body =
            error_payload ~draining:(Atomic.get t.stop) e
          in
          respond t conn ~deadline ~status body)

let stats_json t =
  let plan_totals =
    Mutex.lock t.plans_lock;
    let totals =
      Hashtbl.fold
        (fun _ e acc -> add_plan_stats acc (Plan_cache.stats e.plan.Engine.cache))
        t.plans t.plans_retired
    in
    let live = Hashtbl.length t.plans in
    Mutex.unlock t.plans_lock;
    (totals, live)
  in
  let totals, live = plan_totals in
  let p = totals.Plan_cache.pebble in
  let queue_depth =
    Mutex.lock t.queue_lock;
    let d = Queue.length t.queue in
    Mutex.unlock t.queue_lock;
    d
  in
  let fault_total =
    List.fold_left (fun acc (_, a) -> acc + Atomic.get a) 0 t.fault_counts
  in
  Json.Obj
    [ ( "server",
        Json.Obj
          [ ("uptime_s",
             Json.Float (Unix.gettimeofday () -. t.started_at));
            ("draining", Json.Bool (Atomic.get t.stop));
            ("requests", Json.Int (Atomic.get t.next_index - 1));
            ("inflight", Json.Int (Admission.inflight t.admission));
            ("queue_depth", Json.Int queue_depth);
            ("graph_epoch", Json.Int (Rdf.Graph.epoch (Atomic.get t.graph)));
            ("reloads", Json.Int (Atomic.get t.reloads));
            ("reload_failures", Json.Int (Atomic.get t.reload_failures)) ] );
      ( "responses",
        Json.Obj
          (List.map
             (fun (s, a) -> (string_of_int s, Json.Int (Atomic.get a)))
             t.responses
          @ [ ("disconnected", Json.Int (Atomic.get t.disconnects)) ]) );
      ( "admission",
        Json.Obj
          [ ("admitted", Json.Int (Admission.admitted t.admission));
            ("shed_inflight",
             Json.Int (Admission.shed_inflight t.admission));
            ("shed_tokens", Json.Int (Admission.shed_tokens t.admission));
            ("shed_queue", Json.Int (Atomic.get t.shed_queue));
            ("fuel_returned",
             Json.Int (Admission.fuel_returned t.admission));
            ( "bucket_level",
              match Admission.bucket_level t.admission with
              | Some n -> Json.Int n
              | None -> Json.Null ) ] );
      ( "faults",
        Json.Obj
          (List.map
             (fun (k, a) -> (Faults.kind_name k, Json.Int (Atomic.get a)))
             t.fault_counts
          @ [ ("total", Json.Int fault_total) ]) );
      ( "plan_cache",
        Json.Obj
          [ ("entries", Json.Int live);
            ("compiled", Json.Int (Atomic.get t.plans_compiled));
            ("entry_hits", Json.Int (Atomic.get t.plan_hits));
            ("canonical_hits", Json.Int (Atomic.get t.canonical_hits));
            ("entry_evictions", Json.Int (Atomic.get t.plan_evictions));
            ("hom_sources", Json.Int totals.Plan_cache.hom_sources);
            ( "decisions",
              Json.Obj
                [ ("hits", Json.Int totals.Plan_cache.decision_hits);
                  ("misses", Json.Int totals.Plan_cache.decision_misses) ] );
            ( "pebble",
              Json.Obj
                [ ("hits", Json.Int p.Pebble_cache.hits);
                  ("misses", Json.Int p.Pebble_cache.misses);
                  ("compiled", Json.Int p.Pebble_cache.compiled);
                  ("evictions", Json.Int p.Pebble_cache.evictions) ] ) ] ) ]

let route t conn ~deadline ~idx ~fault req =
  match (req.Http.meth, req.Http.path) with
  | "GET", "/health" ->
      let status =
        if Atomic.get t.stop then "draining" else "ok"
      in
      respond t conn ~deadline ~status:200
        (Json.to_string (Json.Obj [ ("status", Json.String status) ]))
  | "GET", "/stats" ->
      respond t conn ~deadline ~status:200 (Json.to_string (stats_json t))
  | ("GET" | "POST"), "/sparql" ->
      handle_sparql t conn ~deadline ~idx ~fault req
  | ("GET" | "POST"), "/analyze" ->
      handle_analyze t conn ~deadline ~idx ~fault req
  | _, ("/health" | "/stats" | "/sparql" | "/analyze") ->
      let status, body =
        simple_error "invalid_input" 405 "method not allowed"
      in
      respond t conn ~deadline ~status body
  | _ ->
      let status, body = simple_error "not_found" 404 "no such endpoint" in
      respond t conn ~deadline ~status body

let handle_conn t ((conn, idx, fault) : job) =
  Fun.protect
    ~finally:(fun () -> Io.close conn)
    (fun () ->
      let deadline = Unix.gettimeofday () +. t.config.io_timeout in
      (match fault with
      | Some Faults.Disconnect -> Io.inject_read_fault conn Io.Drop
      | Some Faults.Slow -> Io.inject_read_fault conn Io.Stall
      | _ -> ());
      match
        Http.read_request
          ~mangle:(fault = Some Faults.Malformed)
          conn ~deadline ~max_bytes:t.config.max_request_bytes
      with
      | req -> route t conn ~deadline ~idx ~fault req
      | exception Io.Disconnected -> Atomic.incr t.disconnects
      | exception Io.Timeout ->
          (* the read deadline tripped (slow client); the socket is
             usually still writable — try to say so, briefly *)
          let deadline = Unix.gettimeofday () +. 1.0 in
          let status, body =
            simple_error "timeout" 408 "request not received in time"
          in
          respond t conn ~deadline ~status body
      | exception Io.Too_large ->
          let status, body =
            simple_error "invalid_input" 413 "request too large"
          in
          respond t conn ~deadline ~status body
      | exception Http.Malformed msg ->
          let status, body =
            simple_error "malformed_request" 400 ("malformed request: " ^ msg)
          in
          respond t conn ~deadline ~status body)

(* ------------------------------------------------------------------ *)
(* Threads                                                             *)
(* ------------------------------------------------------------------ *)

let pop_job t =
  Mutex.lock t.queue_lock;
  let j = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.queue_lock;
  j

(* Service a pending reload between requests. The compare-and-set means
   exactly one worker runs the thunk; the graph handle is swapped whole,
   so connections never see a half-reloaded store and none are dropped.
   A failing reload (e.g. a broken segment chain just appended) keeps
   the old graph serving and is only counted. *)
let maybe_reload t =
  match t.config.reload with
  | None -> ()
  | Some thunk ->
      if Atomic.compare_and_set t.reload_pending true false then (
        match thunk () with
        | g ->
            Atomic.set t.graph g;
            Atomic.incr t.reloads
        | exception _ -> Atomic.incr t.reload_failures)

let worker_loop t =
  let rec serve () =
    maybe_reload t;
    match pop_job t with
    | Some job ->
        (* once draining, queued requests are not evaluated — they get a
           prompt 503 instead of silently timing out in the queue *)
        (if Atomic.get t.stop then
           let conn, _, _ = job in
           Fun.protect
             ~finally:(fun () -> Io.close conn)
             (fun () ->
               let deadline = Unix.gettimeofday () +. 1.0 in
               let status, body =
                 simple_error "draining" 503 "server is draining"
               in
               respond t conn ~deadline ~headers:(retry_after 1.) ~status
                 body)
         else handle_conn t job);
        serve ()
    | None ->
        if Atomic.get t.stop then ()
        else begin
          Thread.delay 0.002;
          serve ()
        end
  in
  (try serve () with _ -> ());
  Atomic.incr t.workers_done

let accept_loop t =
  let rec loop () =
    if Atomic.get t.stop then ()
    else begin
      (match Unix.select [ t.listener ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept t.listener with
          | fd, _ ->
              let conn = Io.of_fd fd in
              let idx = Atomic.fetch_and_add t.next_index 1 in
              let fault = Faults.for_request t.config.faults idx in
              count_fault t fault;
              Mutex.lock t.queue_lock;
              let depth = Queue.length t.queue in
              if depth >= t.config.queue_capacity then begin
                Mutex.unlock t.queue_lock;
                (* queue watermark: shed right here on the accept
                   thread, before any work is queued *)
                Atomic.incr t.shed_queue;
                Fun.protect
                  ~finally:(fun () -> Io.close conn)
                  (fun () ->
                    let deadline = Unix.gettimeofday () +. 1.0 in
                    let status, body =
                      simple_error "overloaded" 503
                        "request shed: queue watermark reached"
                    in
                    respond t conn ~deadline ~headers:(retry_after 1.)
                      ~status body)
              end
              else begin
                Queue.push (conn, idx, fault) t.queue;
                Mutex.unlock t.queue_lock
              end
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  (try loop () with _ -> ());
  try Unix.close t.listener with Unix.Unix_error _ -> ()

let start config =
  (* a dying peer must not kill the process mid-write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let t = create config in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t.worker_threads <-
    List.init config.workers (fun _ -> Thread.create worker_loop t);
  t

let initiate_drain t = Atomic.set t.stop true
let request_reload t = Atomic.set t.reload_pending true

let cancel_active t =
  Mutex.lock t.active_lock;
  Hashtbl.iter (fun _ b -> Budget.cancel b) t.active;
  Mutex.unlock t.active_lock

(* Wait for the drain to be initiated, then see it through: the accept
   thread closes the listener and exits; in-flight budgets are cancelled
   (repeatedly, to catch requests admitted in the race window) until the
   workers have flushed the queue with 503s and exited. Returns the
   final stats snapshot. *)
let join t =
  while not (Atomic.get t.stop) do
    Thread.delay 0.02
  done;
  Option.iter Thread.join t.accept_thread;
  t.accept_thread <- None;
  let n = List.length t.worker_threads in
  while Atomic.get t.workers_done < n do
    cancel_active t;
    Thread.delay 0.01
  done;
  List.iter Thread.join t.worker_threads;
  t.worker_threads <- [];
  stats_json t

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> initiate_drain t) in
  (try Sys.set_signal Sys.sigterm handler
   with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigint handler
   with Invalid_argument _ | Sys_error _ -> ());
  (* SIGHUP = pick up appended delta segments; only sets a flag, a
     worker does the load between requests *)
  try Sys.set_signal Sys.sighup (Sys.Signal_handle (fun _ -> request_reload t))
  with Invalid_argument _ | Sys_error _ -> ()

let run config =
  let t = start config in
  install_signal_handlers t;
  Fmt.pr "wdsparql: listening on http://%s:%d (workers %d, domains %d)@."
    config.host t.port config.workers config.domains;
  (match Faults.to_string config.faults with
  | "" -> ()
  | spec -> Fmt.pr "wdsparql: fault injection armed: %s@." spec);
  let final = join t in
  Fmt.pr "%s@." (Json.to_string final);
  ()
