(** The long-running SPARQL endpoint: an accept thread feeding a bounded
    queue of worker threads, every request under a private
    {!Resource.Budget} carved from {!Admission}, overload shed promptly
    at three watermarks (accept-queue depth, in-flight count, global
    token bucket) with [503 + Retry-After], graceful drain on
    SIGINT/SIGTERM. See docs/ROBUSTNESS.md for the overload policy and
    the HTTP ↔ error-taxonomy table.

    Routes: [GET/POST /sparql?query=…] (SPARQL JSON results),
    [GET/POST /analyze?query=…] (the static analyzer's JSON report),
    [GET /health], [GET /stats]. *)

type config = {
  graph : Rdf.Graph.t;
  reload : (unit -> Rdf.Graph.t) option;
      (** how to re-resolve the graph on {!request_reload} — e.g. reload
          a store file, picking up freshly appended delta segments.
          [None] disables reloading. *)
  host : string;
  port : int;  (** 0 = pick an ephemeral port; see {!port} *)
  workers : int;  (** worker threads handling connections *)
  domains : int;  (** parallelism inside a single evaluation *)
  queue_capacity : int;  (** accept-queue watermark *)
  admission : Admission.config;
  max_request_bytes : int;
  io_timeout : float;  (** per-connection read/write deadline, seconds *)
  faults : Faults.t;
  plan_capacity : int;  (** distinct cached query plans *)
}

type t

val start : config -> t
(** Bind, listen, and spawn the accept and worker threads. Raises
    [Unix.Unix_error] if the address cannot be bound; raises
    [Invalid_argument] on non-positive [workers] / [queue_capacity] /
    [plan_capacity]. *)

val port : t -> int
(** The bound port (the actual one when [config.port] was [0]). *)

val draining : t -> bool

val initiate_drain : t -> unit
(** Begin graceful shutdown: stop accepting, answer queued connections
    with [503 draining], cancel in-flight budgets. Async-signal-safe
    (only sets a flag); {!join} does the actual work. *)

val join : t -> Analysis.Json.t
(** Block until a drain is initiated (by {!initiate_drain} or a signal
    handler), then see it through — listener closed, queue flushed with
    prompt 503s, in-flight budgets cancelled via [Budget.cancel],
    threads joined — and return the final stats snapshot (the same
    document [/stats] serves). *)

val request_reload : t -> unit
(** Ask for the graph to be re-resolved through [config.reload] (a no-op
    when it is [None]). Async-signal-safe (only sets a flag): a single
    worker runs the thunk between requests and swaps the graph handle
    atomically — no connection is dropped, in-flight evaluations finish
    on the store they started with, and plan-cache entries for the old
    epoch age out of the LRU. A failing reload keeps the old graph and
    increments the [reload_failures] stat. *)

val install_signal_handlers : t -> unit
(** Route SIGINT and SIGTERM to {!initiate_drain}, and SIGHUP to
    {!request_reload} (pick up appended delta segments without a
    restart). *)

val stats_json : t -> Analysis.Json.t
(** The live stats document: request/response counters, admission and
    shed counters, injected-fault counters, plan-cache totals (live
    entries plus a retired accumulator, so totals are monotonic across
    evictions). *)

val run : config -> unit
(** [start] + {!install_signal_handlers} + {!join}: print the listening
    line, serve until signalled, flush the final stats to stdout. *)
