open Tgraphs
module Budget = Resource.Budget

let eval_triple ?budget t graph =
  let source = Tgraph.of_triples [ t ] in
  let enc = Encoded.Encoded_graph.of_graph_cached graph in
  Encoded.Encoded_hom.all ?budget (Encoded.Encoded_hom.compile source enc)
  |> List.filter_map Mapping.of_assignment
  |> Mapping.Set.of_list

let join budget left right =
  Mapping.Set.fold
    (fun m1 acc ->
      Mapping.Set.fold
        (fun m2 acc ->
          Budget.tick budget;
          if Mapping.compatible m1 m2 then
            Mapping.Set.add (Mapping.union m1 m2) acc
          else acc)
        right acc)
    left Mapping.Set.empty

let eval ?(budget = Budget.unlimited) p graph =
  Budget.with_phase budget "reference-eval" @@ fun () ->
  let rec go p =
    match p with
    | Algebra.Triple t -> eval_triple ~budget t graph
    | Algebra.And (a, b) -> join budget (go a) (go b)
    | Algebra.Opt (a, b) ->
        let left = go a and right = go b in
        let joined = join budget left right in
        let unmatched =
          Mapping.Set.filter
            (fun m1 ->
              Budget.tick budget;
              not (Mapping.Set.exists (fun m2 -> Mapping.compatible m1 m2) right))
            left
        in
        Mapping.Set.union joined unmatched
    | Algebra.Union (a, b) -> Mapping.Set.union (go a) (go b)
    | Algebra.Filter (q, condition) ->
        Mapping.Set.filter (fun mu -> Condition.satisfies mu condition) (go q)
    | Algebra.Select (vars, q) ->
        Mapping.Set.map (Mapping.restrict vars) (go q)
  in
  go p

let check ?budget p graph mu = Mapping.Set.mem mu (eval ?budget p graph)
