(** The reference evaluator: a direct implementation of the recursive
    semantics [⟦P⟧G] of Section 2 of the paper. It materialises full
    solution sets at every node, so it is exponential in general (pattern
    evaluation is PSPACE-complete) — it serves as ground truth for the
    optimised evaluators and as the baseline in benchmarks. *)

open Rdf

val eval : ?budget:Resource.Budget.t -> Algebra.t -> Graph.t -> Mapping.Set.t
(** [⟦P⟧G]. *)

val check :
  ?budget:Resource.Budget.t -> Algebra.t -> Graph.t -> Mapping.t -> bool
(** [µ ∈ ⟦P⟧G], by full evaluation. *)
