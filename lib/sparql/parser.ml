open Rdf

type token =
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Dot
  | Kw_union
  | Kw_optional
  | Kw_prefix
  | Kw_filter
  | Kw_select
  | Kw_where
  | Kw_bound
  | Op_eq
  | Op_neq
  | Op_and
  | Op_or
  | Op_not
  | Iriref of string
  | Pname of string * string
  | Var of string
  | Eof

exception Error of string

let error line fmt =
  Fmt.kstr (fun msg -> raise (Error (Printf.sprintf "line %d: %s" line msg))) fmt

let is_ws c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-'

(* Tokens carry the span of their source text, so the parser can attach
   line/column spans to every subpattern it builds (see {!Spans}). *)
let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let bol = ref 0 (* offset of the current line's first character *) in
  let i = ref 0 in
  let pos () = { Span.line = !line; col = !i - !bol + 1 } in
  (* Advance over [k] chars of the current line. *)
  let here k = Span.point ~line:!line ~col:(!i - !bol + 1) ~len:k in
  let emit span tok = tokens := (tok, span) :: !tokens in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if is_ws c then incr i
    else if c = '#' then
      while !i < n && src.[!i] <> '\n' do incr i done
    else if c = '{' then begin emit (here 1) Lbrace; incr i end
    else if c = '}' then begin emit (here 1) Rbrace; incr i end
    else if c = '(' then begin emit (here 1) Lparen; incr i end
    else if c = ')' then begin emit (here 1) Rparen; incr i end
    else if c = '=' then begin emit (here 1) Op_eq; incr i end
    else if c = '!' && !i + 1 < n && src.[!i + 1] = '=' then begin
      emit (here 2) Op_neq;
      i := !i + 2
    end
    else if c = '!' then begin emit (here 1) Op_not; incr i end
    else if c = '&' && !i + 1 < n && src.[!i + 1] = '&' then begin
      emit (here 2) Op_and;
      i := !i + 2
    end
    else if c = '|' && !i + 1 < n && src.[!i + 1] = '|' then begin
      emit (here 2) Op_or;
      i := !i + 2
    end
    else if c = '.' then begin emit (here 1) Dot; incr i end
    else if c = '<' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && src.[!j] <> '>' && src.[!j] <> '\n' do incr j done;
      if !j >= n || src.[!j] <> '>' then error !line "unterminated IRI";
      emit (here (!j + 1 - !i)) (Iriref (String.sub src start (!j - start)));
      i := !j + 1
    end
    else if c = '?' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char src.[!j] do incr j done;
      if !j = start then error !line "empty variable name";
      emit (here (!j - !i)) (Var (String.sub src start (!j - start)));
      i := !j
    end
    else if c = '"' then begin
      (* literal constants, stored IRI-encoded (see Rdf.Literal) *)
      match Rdf.Literal.scan src !i with
      | Ok (literal, next) ->
          let start = pos () in
          (* Literals may span lines; account for embedded newlines. *)
          for k = !i to next - 1 do
            if src.[k] = '\n' then begin
              incr line;
              bol := k + 1
            end
          done;
          i := next;
          emit
            (Span.make ~start ~stop:(pos ()))
            (Iriref (Rdf.Iri.to_string (Rdf.Literal.encode literal)))
      | Error msg -> error !line "%s" msg
    end
    else if is_name_char c || c = ':' then begin
      let start = !i in
      let j = ref start in
      (* '@' and '.' may occur inside prefixed names (mailto:a@b.org); a
         bare '.' never reaches here because it is tokenised eagerly. *)
      while
        !j < n
        && (is_name_char src.[!j] || src.[!j] = ':' || src.[!j] = '@'
           || (src.[!j] = '.' && !j + 1 < n && is_name_char src.[!j + 1]))
      do
        incr j
      done;
      let word = String.sub src start (!j - start) in
      let span = here (!j - !i) in
      (match String.uppercase_ascii word with
      | "UNION" -> emit span Kw_union
      | "OPTIONAL" -> emit span Kw_optional
      | "PREFIX" -> emit span Kw_prefix
      | "FILTER" -> emit span Kw_filter
      | "SELECT" -> emit span Kw_select
      | "WHERE" -> emit span Kw_where
      | "BOUND" -> emit span Kw_bound
      | _ -> (
          match String.index_opt word ':' with
          | Some k ->
              emit span
                (Pname
                   ( String.sub word 0 k,
                     String.sub word (k + 1) (String.length word - k - 1) ))
          | None -> error !line "expected a keyword, IRI, variable or prefixed name; got %S" word));
      i := !j
    end
    else error !line "unexpected character %C" c
  done;
  let eof = Span.point ~line:!line ~col:(n - !bol + 1) ~len:0 in
  List.rev ((Eof, eof) :: !tokens)

(* ------------------------------------------------------------------ *)
(* Recursive descent.                                                  *)
(* ------------------------------------------------------------------ *)

type state = {
  mutable tokens : (token * Span.t) list;
  mutable prefixes : (string * string) list;
  mutable spans : Spans.t;
}

let peek st = match st.tokens with [] -> (Eof, Span.dummy) | t :: _ -> t

let line_of span = span.Span.start.Span.line

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st tok what =
  let got, span = peek st in
  if got = tok then begin
    advance st;
    span
  end
  else error (line_of span) "expected %s" what

(* Record the span of a freshly built subpattern occurrence. *)
let spanned st span p =
  st.spans <- Spans.add st.spans p span;
  p

let resolve st _line prefix local =
  match List.assoc_opt prefix st.prefixes with
  | Some expansion -> Term.iri (expansion ^ local)
  | None ->
      (* Undeclared prefixes denote themselves: [p:knows] is the IRI
         "p:knows". This keeps hand-written queries and the generators'
         compact IRIs in sync. *)
      Term.iri (prefix ^ ":" ^ local)

let term st =
  match peek st with
  | Iriref iri, span ->
      advance st;
      (Term.iri iri, span)
  | Pname (prefix, local), span ->
      advance st;
      (resolve st (line_of span) prefix local, span)
  | Var v, span ->
      advance st;
      (Term.var v, span)
  | _, span -> error (line_of span) "expected a term"

(* FILTER conditions: ! binds tightest, then &&, then ||. *)
let rec condition st = or_cond st

and or_cond st =
  let first = and_cond st in
  let rec chain acc =
    match peek st with
    | Op_or, _ ->
        advance st;
        chain (Condition.Or (acc, and_cond st))
    | _ -> acc
  in
  chain first

and and_cond st =
  let first = unary_cond st in
  let rec chain acc =
    match peek st with
    | Op_and, _ ->
        advance st;
        chain (Condition.And (acc, unary_cond st))
    | _ -> acc
  in
  chain first

and unary_cond st =
  match peek st with
  | Op_not, _ ->
      advance st;
      Condition.Not (unary_cond st)
  | Lparen, _ ->
      advance st;
      let c = condition st in
      ignore (expect st Rparen "')'");
      c
  | Kw_bound, _ -> (
      advance st;
      ignore (expect st Lparen "'('");
      match peek st with
      | Var v, _ ->
          advance st;
          ignore (expect st Rparen "')'");
          Condition.Bound (Rdf.Variable.of_string v)
      | _, span -> error (line_of span) "expected a variable in BOUND(...)")
  | _ ->
      let lhs, _ = term st in
      let negated =
        match peek st with
        | Op_eq, _ ->
            advance st;
            false
        | Op_neq, _ ->
            advance st;
            true
        | _, span -> error (line_of span) "expected '=' or '!=' in filter condition"
      in
      let rhs, _ = term st in
      if negated then Condition.Not (Condition.Eq (lhs, rhs))
      else Condition.Eq (lhs, rhs)

(* Each parsing function below returns the pattern together with its span;
   every constructed subpattern occurrence is also recorded in [st.spans]. *)
let rec group st =
  let open_span = expect st Lbrace "'{'" in
  let rec items acc =
    match peek st with
    | Rbrace, close_span -> (
        advance st;
        match acc with
        | Some (p, _) ->
            (* The group's pattern spans the braces; re-record the root
               occurrence with the wider span so diagnostics can point at
               the whole group. *)
            let span = Span.join open_span close_span in
            (spanned st span p, span)
        | None -> error (line_of close_span) "empty group pattern")
    | Kw_optional, span ->
        advance st;
        let right, right_span = union_chain st in
        (match acc with
        | Some (left, left_span) ->
            let span = Span.join left_span right_span in
            items (Some (spanned st span (Algebra.opt left right), span))
        | None -> error (line_of span) "OPTIONAL cannot start a group")
    | Kw_filter, span ->
        advance st;
        ignore (expect st Lparen "'(' after FILTER");
        let c = condition st in
        let close = expect st Rparen "')'" in
        (match acc with
        | Some (left, left_span) ->
            let span = Span.join left_span close in
            items (Some (spanned st span (Algebra.filter left c), span))
        | None -> error (line_of span) "FILTER cannot start a group")
    | Lbrace, _ ->
        let sub, sub_span = union_chain st in
        items
          (Some
             (match acc with
             | Some (left, left_span) ->
                 let span = Span.join left_span sub_span in
                 (spanned st span (Algebra.and_ left sub), span)
             | None -> (sub, sub_span)))
    | (Iriref _ | Pname _ | Var _), _ ->
        let s, s_span = term st in
        let p, _ = term st in
        let o, o_span = term st in
        (match peek st with Dot, _ -> advance st | _ -> ());
        let t_span = Span.join s_span o_span in
        let t = spanned st t_span (Algebra.triple (Triple.make s p o)) in
        items
          (Some
             (match acc with
             | Some (left, left_span) ->
                 let span = Span.join left_span t_span in
                 (spanned st span (Algebra.and_ left t), span)
             | None -> (t, t_span)))
    | ( Eof | Dot | Kw_union | Kw_prefix | Kw_select | Kw_where | Kw_bound
      | Rparen | Lparen | Op_eq | Op_neq | Op_and | Op_or | Op_not ),
      span ->
        error (line_of span) "unexpected token inside group"
  in
  items None

and union_chain st =
  let first = group st in
  let rec chain (acc, acc_span) =
    match peek st with
    | Kw_union, _ ->
        advance st;
        let right, right_span = group st in
        let span = Span.join acc_span right_span in
        chain (spanned st span (Algebra.union acc right), span)
    | _ -> (acc, acc_span)
  in
  chain first

let prologue st =
  let rec go () =
    match peek st with
    | Kw_prefix, span -> (
        advance st;
        match peek st with
        | Pname (prefix, ""), _ -> (
            advance st;
            match peek st with
            | Iriref iri, _ ->
                advance st;
                st.prefixes <- (prefix, iri) :: st.prefixes;
                go ()
            | _, span -> error (line_of span) "expected <iri> in PREFIX declaration")
        | _ -> error (line_of span) "expected pname: in PREFIX declaration")
    | _ -> ()
  in
  go ()

let select_clause st =
  match peek st with
  | Kw_select, select_span ->
      advance st;
      let rec vars acc =
        match peek st with
        | Var v, _ ->
            advance st;
            vars (Rdf.Variable.of_string v :: acc)
        | _ -> List.rev acc
      in
      let projected = vars [] in
      (match peek st with
      | _, span when projected = [] ->
          error (line_of span) "SELECT needs at least one variable"
      | Kw_where, _ ->
          advance st;
          Some (projected, select_span)
      | _ -> Some (projected, select_span))
  | _ -> None

let parse_spanned src =
  match
    let st = { tokens = tokenize src; prefixes = []; spans = Spans.empty } in
    prologue st;
    let projection = select_clause st in
    let p, p_span = union_chain st in
    let p =
      match projection with
      | Some (vars, select_span) ->
          let span = Span.join select_span p_span in
          spanned st span (Algebra.select (Rdf.Variable.Set.of_list vars) p)
      | None -> p
    in
    (match peek st with
    | Eof, _ -> ()
    | _, span -> error (line_of span) "trailing input after pattern");
    (p, st.spans)
  with
  | result -> Ok result
  | exception Error msg -> Error msg

let parse src = Result.map fst (parse_spanned src)

let parse_exn src =
  match parse src with Ok p -> p | Error msg -> failwith msg
