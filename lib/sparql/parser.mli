(** Concrete syntax for the AND/OPT/UNION fragment.

    Grammar (whitespace-insensitive, [#] comments):
    {v
    query    ::= (PREFIX pname: <iri>)* pattern
    pattern  ::= group ('UNION' group)*
    group    ::= '{' item+ '}'
    item     ::= triple | 'OPTIONAL' group | group ('UNION' group)*
    triple   ::= term term term '.'?
    term     ::= <iri> | pname:local | ?var
    v}

    Items inside a group combine left-to-right: a triple or group is joined
    with AND, an [OPTIONAL] group with OPT — so
    [{ ?x p ?y . OPTIONAL { ?y q ?z } }] parses to
    [(?x,p,?y) OPT (?y,q,?z)]. Keywords are case-insensitive. The printer
    ({!Algebra.pp}, {!Printer.to_string}) emits this syntax, and
    print-then-parse is the identity (tested). *)

val parse : string -> (Algebra.t, string) result

val parse_spanned : string -> (Algebra.t * Spans.t, string) result
(** Like {!parse}, also returning the table of source spans of every
    subpattern occurrence, keyed by physical identity — the input of the
    static analyzer ([Analysis]). *)

val parse_exn : string -> Algebra.t
(** Raises [Failure] with the parse error. *)
