type pos = { line : int; col : int }

type t = { start : pos; stop : pos }

let dummy = { start = { line = 0; col = 0 }; stop = { line = 0; col = 0 } }

let is_dummy s = s = dummy

let make ~start ~stop = { start; stop }

let point ~line ~col ~len =
  { start = { line; col }; stop = { line; col = col + len } }

let pos_compare a b =
  match compare a.line b.line with 0 -> compare a.col b.col | c -> c

let pos_min a b = if pos_compare a b <= 0 then a else b
let pos_max a b = if pos_compare a b >= 0 then a else b

let join a b =
  if is_dummy a then b
  else if is_dummy b then a
  else { start = pos_min a.start b.start; stop = pos_max a.stop b.stop }

let compare a b =
  match pos_compare a.start b.start with
  | 0 -> pos_compare a.stop b.stop
  | c -> c

let equal a b = compare a b = 0

let pp ppf s =
  if is_dummy s then Fmt.string ppf "?:?"
  else if s.start = s.stop then Fmt.pf ppf "%d:%d" s.start.line s.start.col
  else
    Fmt.pf ppf "%d:%d-%d:%d" s.start.line s.start.col s.stop.line s.stop.col
