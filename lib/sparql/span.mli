(** Source spans: half-open regions of query text, for diagnostics.

    Lines and columns are 1-based; a span covers the characters from
    [(start_line, start_col)] up to but not including [(end_line, end_col)].
    {!dummy} (all zeros) marks synthetic patterns with no source text —
    everything constructed through {!Algebra} directly rather than the
    parser. *)

type pos = { line : int; col : int }

type t = { start : pos; stop : pos }

val dummy : t
(** The span of synthetic (non-parsed) syntax; {!is_dummy} recognises it. *)

val is_dummy : t -> bool

val make : start:pos -> stop:pos -> t

val point : line:int -> col:int -> len:int -> t
(** A single-line span of [len] characters starting at [line]/[col]. *)

val join : t -> t -> t
(** The smallest span covering both arguments; a {!dummy} argument is
    ignored (joining two dummies is dummy). *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : t Fmt.t
(** [line:col-line:col] (or [line:col] for empty spans); [?:?] for
    {!dummy}. *)
