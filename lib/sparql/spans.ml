open Rdf

(* Queries are tiny (tens of nodes), so an association list with physical
   equality beats building a custom identity hashtable. Kept in insertion
   order; the parser inserts leaves first, in source order. *)
type t = (Algebra.t * Span.t) list

let empty = []

let add t p span = (p, span) :: t

let find t p =
  let rec go = function
    | [] -> None
    | (q, span) :: rest -> if q == p then Some span else go rest
  in
  go t

let find_or_dummy t p = Option.value (find t p) ~default:Span.dummy

let triple_spans t =
  List.rev
    (List.filter_map
       (function Algebra.Triple tr, span -> Some (tr, span) | _ -> None)
       t)

let triple_span t tr =
  match List.find_opt (fun (tr', _) -> Triple.equal tr tr') (triple_spans t) with
  | Some (_, span) -> span
  | None -> Span.dummy
