(** Source-span table for a parsed pattern.

    {!Parser.parse_spanned} records the span of every subpattern occurrence
    it builds. Because the algebra carries no annotations, the table is
    keyed by {e physical} identity: each occurrence is a distinct value, so
    structurally equal subpatterns (the same triple written twice) keep
    distinct spans. Consequently lookups only make sense for subpattern
    values reachable from the pattern the table was built for — rebuilt or
    transformed patterns map to [None]. *)

open Rdf

type t

val empty : t

val add : t -> Algebra.t -> Span.t -> t

val find : t -> Algebra.t -> Span.t option
(** Span of this subpattern occurrence (physical identity). *)

val find_or_dummy : t -> Algebra.t -> Span.t

val triple_spans : t -> (Triple.t * Span.t) list
(** The recorded triple-pattern leaves in source order. Lookups over this
    list are structural, so duplicated triples resolve to their first
    occurrence — good enough for node-level diagnostics. *)

val triple_span : t -> Triple.t -> Span.t
(** First recorded span of a structurally equal triple; {!Span.dummy} when
    absent. *)
