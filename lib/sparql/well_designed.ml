open Rdf

let rec is_union_free = function
  | Algebra.Triple _ -> true
  | Algebra.And (a, b) | Algebra.Opt (a, b) -> is_union_free a && is_union_free b
  | Algebra.Filter (p, _) | Algebra.Select (_, p) -> is_union_free p
  | Algebra.Union _ -> false

let rec union_branches = function
  | Algebra.Union (a, b) -> union_branches a @ union_branches b
  | Algebra.Select (_, p) -> union_branches p
  | p -> [ p ]

type violation =
  | Nested_union of Algebra.t
  | Unsafe_variable of {
      variable : Variable.t;
      opt : Algebra.t;
      outside : Algebra.t;
    }
  | Unsafe_filter of Condition.t * Algebra.t
  | Nested_select of Algebra.t
  | Beyond_core_fragment of Algebra.t

let pp_violation ppf = function
  | Nested_union p -> Fmt.pf ppf "UNION nested below AND/OPT in %a" Algebra.pp p
  | Unsafe_variable { variable; opt; outside } ->
      Fmt.pf ppf
        "variable %a occurs in the OPT right arm of %a, not in its left arm, \
         and again outside it (in %a)"
        Variable.pp variable Algebra.pp opt Algebra.pp outside
  | Unsafe_filter (c, p) ->
      Fmt.pf ppf "unsafe filter (%a) in %a: it mentions variables outside its pattern"
        Condition.pp c Algebra.pp p
  | Nested_select p -> Fmt.pf ppf "SELECT below the top level in %a" Algebra.pp p
  | Beyond_core_fragment p ->
      Fmt.pf ppf
        "%a uses FILTER/SELECT: outside the paper's core AND/OPT/UNION \
         fragment (Section 5)"
        Algebra.pp p

let check p =
  let ( let* ) = Result.bind in
  (* outside: for each variable occurring outside the current subpattern
     (within the enclosing UNION-free branch), the innermost sibling
     subpattern witnessing that occurrence — kept so a violation can name
     the re-occurrence, not just the variable. *)
  let contribute q m =
    Variable.Set.fold (fun v m -> Variable.Map.add v q m) (Algebra.vars q) m
  in
  let rec go outside p =
    match p with
    | Algebra.Triple _ -> Ok ()
    | Algebra.Union _ -> Error (Nested_union p)
    | Algebra.Select _ -> Error (Nested_select p)
    | Algebra.Filter (q, condition) ->
        let* () =
          if Variable.Set.subset (Condition.vars condition) (Algebra.vars q)
          then Ok ()
          else Error (Unsafe_filter (condition, p))
        in
        go outside q
    | Algebra.And (a, b) ->
        let* () = go (contribute b outside) a in
        go (contribute a outside) b
    | Algebra.Opt (a, b) ->
        let dangerous =
          Variable.Set.filter
            (fun v -> Variable.Map.mem v outside)
            (Variable.Set.diff (Algebra.vars b) (Algebra.vars a))
        in
        let* () =
          match Variable.Set.choose_opt dangerous with
          | Some v ->
              Error
                (Unsafe_variable
                   {
                     variable = v;
                     opt = p;
                     outside = Variable.Map.find v outside;
                   })
          | None -> Ok ()
        in
        let* () = go (contribute b outside) a in
        go (contribute a outside) b
  in
  (* a single outermost SELECT is allowed *)
  let body = match p with Algebra.Select (_, q) -> q | q -> q in
  List.fold_left
    (fun acc branch ->
      let* () = acc in
      go Variable.Map.empty branch)
    (Ok ()) (union_branches body)

let is_well_designed p = Result.is_ok (check p)
