(** Well-designedness of graph patterns (Section 2 of the paper, extended
    to the FILTER/SELECT operators of Section 5).

    A UNION-free pattern [P] is well-designed when
    - for every subpattern [P' = (P1 OPT P2)] of [P], every variable
      occurring in [P2] but not in [P1] does not occur outside [P'] in
      [P]; and
    - every FILTER is {e safe}: in [(P' FILTER R)], [vars(R) ⊆ vars(P')].

    A general pattern is well-designed when it is a top-level union of
    UNION-free well-designed patterns (UNION normal form), optionally
    under a single outermost SELECT. *)

open Rdf

val is_union_free : Algebra.t -> bool

val union_branches : Algebra.t -> Algebra.t list
(** Flatten the top-level UNIONs (below an outermost SELECT, if any):
    [P1 UNION (P2 UNION P3)] gives [[P1; P2; P3]]. Branches may themselves
    contain nested UNIONs (in which case the pattern is not
    well-designed). *)

type violation =
  | Nested_union of Algebra.t
      (** A UNION occurs below AND or OPT in this branch. *)
  | Unsafe_variable of {
      variable : Variable.t;
      opt : Algebra.t;
      outside : Algebra.t;
    }
      (** [variable] occurs in the right arm of the OPT subpattern [opt],
          not in its left arm, and again outside it; [outside] is the
          innermost sibling subpattern witnessing the re-occurrence. The
          full witness travels with the violation so consumers (the
          analyzer, {!Wdpt.Translate}) need not re-derive it. *)
  | Unsafe_filter of Condition.t * Algebra.t
      (** The FILTER mentions a variable not occurring in its pattern. *)
  | Nested_select of Algebra.t
      (** SELECT somewhere other than the outermost position. *)
  | Beyond_core_fragment of Algebra.t
      (** Raised by consumers (e.g. the wdPT translation) that only accept
          the paper's core AND/OPT/UNION fragment. *)

val pp_violation : violation Fmt.t

val check : Algebra.t -> (unit, violation) result
(** [Ok ()] iff the pattern is well-designed (in the extended sense
    above). *)

val is_well_designed : Algebra.t -> bool
