(* The segment-merge kernel: pure rank arithmetic that presents a base
   sorted permutation plus a set of added and deleted triples as one
   merged sorted flat view, without materializing the merge. No bytes,
   no mappings — [Storage] owns those; this module owns only the
   positional algebra, and ticks the resource budget once per composed
   delta entry so a pathological segment chain degrades loudly instead
   of hanging the load. *)

module E = Encoded.Encoded_graph

(* First index of [v] whose rotated triple is >= [key] (rot-sorted
   view). *)
let view_lower_bound v rot key =
  let lo = ref 0 and hi = ref v.E.fn in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare (rot (v.E.fget mid)) key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let view_mem v rot triple =
  let i = view_lower_bound v rot (rot triple) in
  i < v.E.fn && v.E.fget i = triple

(* Fold an ordered chain of (adds, dels) segments over a base membership
   predicate into one net delta: [adds] absent from the base, [dels]
   present in it, the two disjoint. Later segments win — a segment may
   re-add a triple an earlier one deleted (drops both) or delete an
   earlier segment's add (drops the add). *)
let compose ?(budget = Resource.Budget.unlimited) ~base_mem ~segments () =
  let state : (int * int * int, bool) Hashtbl.t = Hashtbl.create 64 in
  (* state maps a touched triple to its net liveness *)
  List.iter
    (fun (adds, dels) ->
      Array.iter
        (fun t ->
          Resource.Budget.tick budget;
          Hashtbl.replace state t false)
        dels;
      Array.iter
        (fun t ->
          Resource.Budget.tick budget;
          Hashtbl.replace state t true)
        adds)
    segments;
  let net_adds = ref [] and net_dels = ref [] in
  Hashtbl.iter
    (fun t live ->
      let in_base = base_mem t in
      if live && not in_base then net_adds := t :: !net_adds
      else if (not live) && in_base then net_dels := t :: !net_dels)
    state;
  (Array.of_list !net_adds, Array.of_list !net_dels)

(* The merged view of [base] (rot-sorted) with [adds] (absent from base)
   inserted and [dels] (present in base) suppressed.

   Precomputed per delta entry:
   - [del_pos.(d)]: the base positions of the deleted triples, sorted.
   - [add_at.(j)]: the merged position of the j-th add (in rot order):
     its survivor rank in the base (lower bound minus deletions before
     it) plus the j adds that precede it.

   A probe [fget i] then needs only binary searches over the delta
   arrays: if [i] is some [add_at.(j)] the answer is that add; otherwise
   [i] names the q-th surviving base triple (q = i minus the adds before
   i), whose base position is recovered from [del_pos] — [del_pos.(d) -
   d] is non-decreasing, so "smallest d with del_pos.(d) > q + d" is a
   monotone predicate and the position is q + d. Probe cost O(log Δ) on
   top of the base view's own cost. *)
let merge ?(budget = Resource.Budget.unlimited) ~base ~rot ~adds ~dels () =
  let by_rot a b = compare (rot a) (rot b) in
  let adds = Array.copy adds and dels = Array.copy dels in
  Array.sort by_rot adds;
  Array.sort by_rot dels;
  let n_adds = Array.length adds and n_dels = Array.length dels in
  let del_pos =
    Array.map
      (fun t ->
        Resource.Budget.tick budget;
        view_lower_bound base rot (rot t))
      dels
  in
  Array.sort compare del_pos;
  (* deletions strictly before base position [b] *)
  let dels_before b =
    let lo = ref 0 and hi = ref n_dels in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if del_pos.(mid) < b then lo := mid + 1 else hi := mid
    done;
    !lo
  in
  let add_at =
    Array.mapi
      (fun j t ->
        Resource.Budget.tick budget;
        let b = view_lower_bound base rot (rot t) in
        b - dels_before b + j)
      adds
  in
  let fn = base.E.fn - n_dels + n_adds in
  let fget i =
    (* binary search add_at for i; exact hit -> that add, otherwise the
       search's lower bound counts the adds placed before position i *)
    let lo = ref 0 and hi = ref n_adds in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if add_at.(mid) < i then lo := mid + 1 else hi := mid
    done;
    if !lo < n_adds && add_at.(!lo) = i then adds.(!lo)
    else
      let q = i - !lo in
      let lo = ref 0 and hi = ref n_dels in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if del_pos.(mid) <= q + mid then lo := mid + 1 else hi := mid
      done;
      base.E.fget (q + !lo)
  in
  { E.fn; fget }
