(** The segment-merge kernel behind format-v2 delta overlays.

    Pure positional algebra — no file or mapping concern (that stays in
    {!Storage}): given a base sorted permutation as an
    {!Encoded.Encoded_graph.flat_view} plus the net added and deleted
    triples of a segment chain, it presents the merged sorted sequence
    as another flat view without materializing it. Merge setup is
    O(Δ log n) binary searches; each probe of the merged view costs
    O(log Δ) on top of the base probe. Both entry points tick the
    resource budget once per delta entry (budget-lint kernel). *)

val view_lower_bound :
  Encoded.Encoded_graph.flat_view ->
  (int * int * int -> int * int * int) ->
  int * int * int ->
  int
(** First index of the rot-sorted view whose rotated triple is >= the
    given rotated key. *)

val view_mem :
  Encoded.Encoded_graph.flat_view ->
  (int * int * int -> int * int * int) ->
  int * int * int ->
  bool
(** Exact membership of a raw triple in a rot-sorted view. *)

val compose :
  ?budget:Resource.Budget.t ->
  base_mem:(int * int * int -> bool) ->
  segments:((int * int * int) array * (int * int * int) array) list ->
  unit ->
  (int * int * int) array * (int * int * int) array
(** Fold an ordered chain of per-segment (adds, dels) arrays over a
    base-membership predicate into one net [(adds, dels)] pair: the
    returned adds are absent from the base, the dels present in it, and
    the two are disjoint. Later segments override earlier ones (delete
    then re-add cancels out). Order within the returned arrays is
    unspecified. *)

val merge :
  ?budget:Resource.Budget.t ->
  base:Encoded.Encoded_graph.flat_view ->
  rot:(int * int * int -> int * int * int) ->
  adds:(int * int * int) array ->
  dels:(int * int * int) array ->
  unit ->
  Encoded.Encoded_graph.flat_view
(** The merged view of [base] (sorted by [rot]) with [adds] inserted and
    [dels] suppressed. Requires what {!compose} guarantees: every add
    absent from the base, every del present, adds and dels disjoint. The
    input arrays are copied; the result is a pure view safe to share
    across domains. *)
