(* The compiled store: writer (plain buffered output, atomic rename) and
   mmap reader. This module owns every byte-layout and mapping concern;
   the rest of the codebase sees the result only through the closure
   views of [Rdf.Dictionary.of_view] and [Encoded.Encoded_graph.of_views]
   — a lint rule (tools/lint) keeps [Unix.map_file]/[Bigarray] confined
   here. *)

module E = Encoded.Encoded_graph
module Err = Wdsparql_error
module A1 = Bigarray.Array1

let magic = "WDSTORE1"
let format_version = 1
let header_size = 256

(* Detects reading a store on a machine of the other endianness (the
   words would come back byte-swapped). Fits in 57 bits, so it is a
   valid OCaml int everywhere we run. *)
let byte_order_mark = 0x0123456789ABCDEF

(* Header word offsets (bytes). The section table holds (offset, length)
   pairs for the seven sections in [section_count] order: dict-offsets,
   term-sort, dict-blob, spo, pos, osp, pstats. *)
let off_version = 8
let off_bom = 16
let off_triples = 24
let off_terms = 32
let off_stamp = 40
let off_preds = 48
let off_distinct_s = 56
let off_distinct_o = 64
let off_distinct_p = 72
let off_table = 80
let section_count = 7

let fail path fault msg = Err.fail (Err.Store_error { path; fault; msg })

(* ------------------------------------------------------------------ *)
(* Content stamp: FNV-1a folded into 62 bits so the stamp is a
   non-negative OCaml int on every 64-bit platform (and so [-1 - stamp]
   is always a valid negative identity).                               *)
(* ------------------------------------------------------------------ *)

let fnv_basis = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3
let fnv_byte h b = ((h lxor b) * fnv_prime) land max_int

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let identity_of_stamp stamp = -1 - stamp

(* ------------------------------------------------------------------ *)
(* Term serialization: a one-byte tag and the term's text. Both term
   constructors reject the empty string, so entries are >= 2 bytes and
   the byte comparison used by [term-sort] is total and unambiguous
   (tags differ before texts are compared).                            *)
(* ------------------------------------------------------------------ *)

let serialize_term = function
  | Rdf.Term.Iri i -> "I" ^ Rdf.Iri.to_string i
  | Rdf.Term.Var v -> "V" ^ Rdf.Variable.to_string v

let deserialize_term path s =
  let corrupt msg = fail path Err.Corrupt msg in
  if String.length s < 2 then corrupt "dictionary entry shorter than tag + text"
  else
    let text = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'I' -> (
        try Rdf.Term.iri text
        with Invalid_argument _ -> corrupt "invalid IRI in dictionary blob")
    | 'V' -> (
        try Rdf.Term.var text
        with Invalid_argument _ ->
          corrupt "invalid variable name in dictionary blob")
    | _ -> corrupt "unknown term tag in dictionary blob"

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let add_word buf v = Buffer.add_int64_le buf (Int64.of_int v)

let save enc path =
  let n = E.cardinal enc in
  let dict = E.dictionary enc in
  let n_terms = Rdf.Dictionary.size dict in
  (* Dictionary sections: blob + offsets in id order, and the ids sorted
     by serialized bytes for the reader's reverse lookup. *)
  let ser =
    Array.init n_terms (fun id -> serialize_term (Rdf.Dictionary.term_of dict id))
  in
  let order = Array.init n_terms Fun.id in
  Array.sort (fun a b -> String.compare ser.(a) ser.(b)) order;
  let offsets = Buffer.create ((n_terms + 1) * 8) in
  let blob = Buffer.create 1024 in
  Array.iter
    (fun s ->
      add_word offsets (Buffer.length blob);
      Buffer.add_string blob s)
    ser;
  add_word offsets (Buffer.length blob);
  let term_sort = Buffer.create (n_terms * 8) in
  Array.iter (fun id -> add_word term_sort id) order;
  (* Index sections: the raw tuples of each permutation, in its order. *)
  let index_section nth =
    let buf = Buffer.create (n * 24) in
    for i = 0 to n - 1 do
      let s, p, o = nth enc i in
      add_word buf s;
      add_word buf p;
      add_word buf o
    done;
    buf
  in
  let spo = index_section E.nth_spo
  and pos = index_section E.nth_pos
  and osp = index_section E.nth_osp in
  (* Statistics rows: one per distinct predicate, ascending pid (the POS
     permutation enumerates predicates in order). Computed now — loads
     answer the planner from these without scanning the mapping. *)
  let preds = ref [] in
  let last = ref min_int in
  for i = 0 to n - 1 do
    let _, p, _ = E.nth_pos enc i in
    if p <> !last then begin
      preds := p :: !preds;
      last := p
    end
  done;
  let preds = List.rev !preds in
  let pstats = Buffer.create 64 in
  List.iter
    (fun p ->
      let s = E.predicate_stats enc p in
      add_word pstats p;
      add_word pstats s.E.triples;
      add_word pstats s.E.distinct_subjects;
      add_word pstats s.E.distinct_objects)
    preds;
  (* Payload assembly: sections 16-byte aligned, table recorded. *)
  let payload = Buffer.create 4096 in
  let table = Array.make section_count (0, 0) in
  let add_section idx buf =
    let pos = header_size + Buffer.length payload in
    let pad = (16 - (pos mod 16)) mod 16 in
    Buffer.add_string payload (String.make pad '\000');
    table.(idx) <- (pos + pad, Buffer.length buf);
    Buffer.add_buffer payload buf
  in
  add_section 0 offsets;
  add_section 1 term_sort;
  add_section 2 blob;
  add_section 3 spo;
  add_section 4 pos;
  add_section 5 osp;
  add_section 6 pstats;
  let stamp = fnv_string fnv_basis (Buffer.contents payload) in
  let header = Buffer.create header_size in
  Buffer.add_string header magic;
  add_word header format_version;
  add_word header byte_order_mark;
  add_word header n;
  add_word header n_terms;
  add_word header stamp;
  add_word header (List.length preds);
  add_word header (E.distinct_subjects enc);
  add_word header (E.distinct_objects enc);
  add_word header (E.distinct_predicates enc);
  Array.iter
    (fun (off, len) ->
      add_word header off;
      add_word header len)
    table;
  Buffer.add_string header
    (String.make (header_size - Buffer.length header) '\000');
  let io_fail msg = Err.fail (Err.Io_error { path; msg }) in
  let tmp = path ^ ".tmp" in
  let oc = try open_out_bin tmp with Sys_error msg -> io_fail msg in
  (try
     Buffer.output_buffer oc header;
     Buffer.output_buffer oc payload;
     flush oc;
     (* The temp file's bytes must reach the disk before the rename
        publishes it, or a crash right after could leave a truncated
        store at the final path — the rename is atomic against readers
        only; durability needs the fsync. *)
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     (match e with
     | Sys_error msg -> io_fail msg
     | Unix.Unix_error (err, _, _) -> io_fail (Unix.error_message err)
     | e -> raise e));
  (try Sys.rename tmp path with Sys_error msg -> io_fail msg);
  (* Persist the rename itself. Best-effort: some filesystems refuse
     directory opens or fsync, and the store is already fully written. *)
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dir ->
      (try Unix.fsync dir with Unix.Unix_error _ -> ());
      Unix.close dir

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

type header = {
  h_triples : int;
  h_terms : int;
  h_stamp : int;
  h_preds : int;
  h_distinct_s : int;
  h_distinct_o : int;
  h_distinct_p : int;
  h_table : (int * int) array;
  h_file_bytes : int;
}

(* Read and validate the fixed header through ordinary channel I/O (the
   mappings come later, and only for a header that checked out). *)
let read_header path ic =
  let size = in_channel_length ic in
  if size < String.length magic then
    fail path Err.Bad_magic "file shorter than the store magic";
  let found_magic = really_input_string ic (String.length magic) in
  if not (String.equal found_magic magic) then
    fail path Err.Bad_magic "not a compiled store";
  if size < header_size then fail path Err.Truncated "incomplete header";
  let rest = really_input_string ic (header_size - String.length magic) in
  let header = found_magic ^ rest in
  let word off = Int64.to_int (String.get_int64_le header off) in
  let version = word off_version in
  if version <> format_version then
    fail path
      (Err.Version_mismatch { found = version; expected = format_version })
      "";
  if word off_bom <> byte_order_mark then
    fail path Err.Corrupt "byte-order mark mismatch (endianness or corruption)";
  let h =
    {
      h_triples = word off_triples;
      h_terms = word off_terms;
      h_stamp = word off_stamp;
      h_preds = word off_preds;
      h_distinct_s = word off_distinct_s;
      h_distinct_o = word off_distinct_o;
      h_distinct_p = word off_distinct_p;
      h_table =
        Array.init section_count (fun k ->
            (word (off_table + (16 * k)), word (off_table + (16 * k) + 8)));
      h_file_bytes = size;
    }
  in
  if h.h_triples < 0 || h.h_terms < 0 || h.h_preds < 0 || h.h_stamp < 0 then
    fail path Err.Corrupt "negative count in header";
  if
    h.h_distinct_s < 0
    || h.h_distinct_s > h.h_terms
    || h.h_distinct_o < 0
    || h.h_distinct_o > h.h_terms
    || h.h_distinct_p < 0
    || h.h_distinct_p > h.h_terms
  then fail path Err.Corrupt "distinct-count statistics out of range";
  let expected_len =
    [|
      8 * (h.h_terms + 1);
      8 * h.h_terms;
      -1 (* blob: free-form length *);
      24 * h.h_triples;
      24 * h.h_triples;
      24 * h.h_triples;
      32 * h.h_preds;
    |]
  in
  Array.iteri
    (fun k (off, len) ->
      if off < header_size || len < 0 || len > size || off > size - len then
        fail path Err.Truncated
          (Printf.sprintf "section %d extends past end-of-file" k);
      if expected_len.(k) >= 0 && len <> expected_len.(k) then
        fail path Err.Corrupt
          (Printf.sprintf "section %d length disagrees with header counts" k))
    h.h_table;
  (* Sections must also be pairwise disjoint: in-bounds but overlapping
     offsets would alias dictionary/index bytes and yield wrong answers
     without any out-of-bounds access to catch it. *)
  let order = Array.init section_count Fun.id in
  Array.sort
    (fun a b -> compare (fst h.h_table.(a)) (fst h.h_table.(b)))
    order;
  let last_end = ref header_size in
  Array.iter
    (fun k ->
      let off, len = h.h_table.(k) in
      if len > 0 then begin
        if off < !last_end then
          fail path Err.Corrupt
            (Printf.sprintf "section %d overlaps another section" k);
        last_end := off + len
      end)
    order;
  h

let map_section path fd kind ~pos ~bytes ~elt_bytes =
  if bytes = 0 then None
  else
    try
      let g =
        Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
          [| bytes / elt_bytes |]
      in
      Some (Bigarray.array1_of_genarray g)
    with Unix.Unix_error (e, _, _) ->
      Err.fail
        (Err.Io_error
           { path; msg = "mmap failed: " ^ Unix.error_message e })

let verify_stamp path fd h =
  let payload_bytes = h.h_file_bytes - header_size in
  let stamp =
    match
      map_section path fd Bigarray.char ~pos:header_size ~bytes:payload_bytes
        ~elt_bytes:1
    with
    | None -> fnv_basis
    | Some bytes ->
        let hash = ref fnv_basis in
        for i = 0 to payload_bytes - 1 do
          hash := fnv_byte !hash (Char.code (A1.get bytes i))
        done;
        !hash
  in
  if stamp <> h.h_stamp then
    fail path Err.Checksum_mismatch
      (Printf.sprintf "payload hashes to %#x, header says %#x" stamp h.h_stamp)

let with_store path f =
  let ic =
    try open_in_bin path
    with Sys_error msg -> Err.fail (Err.Io_error { path; msg })
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let h = read_header path ic in
      (* The mappings outlive the descriptor: closing the channel after
         [f] returns does not unmap anything. *)
      f h (Unix.descr_of_in_channel ic))

(* The dictionary view over the mapped offsets / sort / blob sections.
   Offsets are validated at each decode (not eagerly: an O(n_terms)
   scan would defeat the O(pages touched) load), so a corrupt blob
   surfaces as [Store_error Corrupt] at first touch, never a crash —
   every mapping access below is bounds-checked by Bigarray. *)
let dict_view path ~offsets ~term_sort ~blob ~blob_len ~n_terms =
  let entry id =
    let lo = A1.get offsets id and hi = A1.get offsets (id + 1) in
    if lo < 0 || hi < lo || hi > blob_len then
      fail path Err.Corrupt
        (Printf.sprintf "dictionary offsets for id %d out of range" id);
    (lo, hi - lo)
  in
  let blob_get =
    match blob with
    | Some b -> fun i -> A1.get b i
    | None ->
        fun _ -> fail path Err.Corrupt "term refers into an empty blob"
  in
  let view_term id =
    let lo, len = entry id in
    deserialize_term path (String.init len (fun i -> blob_get (lo + i)))
  in
  (* Compare term [id]'s bytes against [probe] without materialising the
     entry. *)
  let compare_entry id probe =
    let lo, len = entry id in
    let plen = String.length probe in
    let rec go i =
      if i = len || i = plen then compare len plen
      else
        let c = Char.compare (blob_get (lo + i)) probe.[i] in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let sorted_id rank =
    match term_sort with
    | None -> fail path Err.Corrupt "term-sort section missing"
    | Some ts ->
        let id = A1.get ts rank in
        if id < 0 || id >= n_terms then
          fail path Err.Corrupt "term-sort id out of range"
        else id
  in
  let view_find term =
    let probe = serialize_term term in
    let lo = ref 0 and hi = ref n_terms in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare_entry (sorted_id mid) probe < 0 then lo := mid + 1
      else hi := mid
    done;
    if !lo >= n_terms then None
    else
      let id = sorted_id !lo in
      if compare_entry id probe = 0 then Some id else None
  in
  { Rdf.Dictionary.view_size = n_terms; view_term; view_find }

let triple_view path section n =
  match section with
  | None ->
      {
        E.fn = 0;
        fget = (fun _ -> fail path Err.Corrupt "probe into an empty index");
      }
  | Some a ->
      {
        E.fn = n;
        fget =
          (fun i -> (A1.get a (3 * i), A1.get a ((3 * i) + 1), A1.get a ((3 * i) + 2)));
      }

(* Per-predicate rows, pid-ascending; checked eagerly (rows = distinct
   predicates, a tiny section) so binary search is sound. A predicate
   with no row genuinely has no triples: the writer emits a row for
   every distinct predicate. *)
let stats_seed path ~pstats ~h =
  let zero = { E.triples = 0; distinct_subjects = 0; distinct_objects = 0 } in
  let row rank =
    match pstats with
    | None -> fail path Err.Corrupt "statistics row missing"
    | Some a ->
        ( A1.get a (4 * rank),
          {
            E.triples = A1.get a ((4 * rank) + 1);
            distinct_subjects = A1.get a ((4 * rank) + 2);
            distinct_objects = A1.get a ((4 * rank) + 3);
          } )
  in
  for rank = 0 to h.h_preds - 1 do
    let pid, s = row rank in
    if
      pid < 0
      || s.E.triples < 0
      || s.E.distinct_subjects < 0
      || s.E.distinct_objects < 0
      || (rank > 0 && pid <= fst (row (rank - 1)))
    then fail path Err.Corrupt "statistics rows unsorted or out of range"
  done;
  let seed_predicate p =
    let lo = ref 0 and hi = ref h.h_preds in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst (row mid) < p then lo := mid + 1 else hi := mid
    done;
    if !lo < h.h_preds then
      let pid, s = row !lo in
      Some (if pid = p then s else zero)
    else Some zero
  in
  {
    E.seed_subjects = h.h_distinct_s;
    seed_objects = h.h_distinct_o;
    seed_predicates = h.h_distinct_p;
    seed_predicate;
  }

let load ?(verify = false) path =
  with_store path (fun h fd ->
      if verify then verify_stamp path fd h;
      let sec k = h.h_table.(k) in
      let map_ints k =
        let pos, bytes = sec k in
        map_section path fd Bigarray.int ~pos ~bytes ~elt_bytes:8
      in
      let offsets =
        match map_ints 0 with
        | Some a -> a
        | None -> fail path Err.Corrupt "dictionary offsets section empty"
      in
      let term_sort = map_ints 1 in
      let blob =
        let pos, bytes = sec 2 in
        map_section path fd Bigarray.char ~pos ~bytes ~elt_bytes:1
      in
      let dict =
        Rdf.Dictionary.of_view
          (dict_view path ~offsets ~term_sort ~blob ~blob_len:(snd (sec 2))
             ~n_terms:h.h_terms)
      in
      E.of_views
        ~identity:(identity_of_stamp h.h_stamp)
        ~dict
        ~spo:(triple_view path (map_ints 3) h.h_triples)
        ~pos:(triple_view path (map_ints 4) h.h_triples)
        ~osp:(triple_view path (map_ints 5) h.h_triples)
        ~stats:(stats_seed path ~pstats:(map_ints 6) ~h)
        ())

let load_graph ?verify path =
  let enc = load ?verify path in
  E.register enc;
  (* The deferred term-level decode: only forced by consumers outside
     the encoded path (naive evaluation, printing); runs on the same
     dictionary, so decoded terms are shared with the store's memo. *)
  Rdf.Graph.deferred ~epoch:(E.epoch enc) (fun () ->
      let dict = E.dictionary enc in
      let acc = ref [] in
      for i = E.cardinal enc - 1 downto 0 do
        acc := Rdf.Dictionary.decode_triple dict (E.nth_spo enc i) :: !acc
      done;
      Rdf.Index.of_triples !acc)

type info = {
  version : int;
  triples : int;
  terms : int;
  predicates : int;
  stamp : int;
  identity : int;
  file_bytes : int;
}

let info ?(verify = false) path =
  with_store path (fun h fd ->
      if verify then verify_stamp path fd h;
      {
        version = format_version;
        triples = h.h_triples;
        terms = h.h_terms;
        predicates = h.h_preds;
        stamp = h.h_stamp;
        identity = identity_of_stamp h.h_stamp;
        file_bytes = h.h_file_bytes;
      })

let looks_like_store path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | s -> String.equal s magic
          | exception End_of_file -> false)
