(* The compiled store: writer (plain buffered output, atomic rename) and
   mmap reader. This module owns every byte-layout and mapping concern;
   the rest of the codebase sees the result only through the closure
   views of [Rdf.Dictionary.of_view] and [Encoded.Encoded_graph.of_views]
   / [union] — a lint rule (tools/lint) keeps [Unix.map_file]/[Bigarray]
   confined here.

   Format v2 adds two multi-file shapes around the v1 base layout
   (which is unchanged byte for byte):
   - delta segments [<base>.d1, .d2, ...]: append-only add/delete logs
     with their own dictionary-growth block, chained by parent stamp
     and merged at load through [Overlay] into the same flat views;
   - a shard manifest naming member stores split by predicate hash
     slice, loaded as a lazily-forced [Encoded_graph.union]. *)

module E = Encoded.Encoded_graph
module Err = Wdsparql_error
module A1 = Bigarray.Array1

let magic = "WDSTORE1"
let delta_magic = "WDSDELT1"
let manifest_magic = "WDSMANI1"
let format_version = 2
let header_size = 256

(* Detects reading a store on a machine of the other endianness (the
   words would come back byte-swapped). Fits in 57 bits, so it is a
   valid OCaml int everywhere we run. *)
let byte_order_mark = 0x0123456789ABCDEF

(* Header word offsets (bytes). The section table holds (offset, length)
   pairs for the seven sections in [section_count] order: dict-offsets,
   term-sort, dict-blob, spo, pos, osp, pstats. *)
let off_version = 8
let off_bom = 16
let off_triples = 24
let off_terms = 32
let off_stamp = 40
let off_preds = 48
let off_distinct_s = 56
let off_distinct_o = 64
let off_distinct_p = 72
let off_table = 80
let section_count = 7

let section_names =
  [|
    "dict-offsets"; "term-sort"; "dict-blob"; "spo-index"; "pos-index";
    "osp-index"; "pred-stats";
  |]

(* Segment header word offsets. Four sections: new-dict-offsets,
   new-dict-blob, adds, dels. *)
let soff_parent = 24
let soff_stamp = 32
let soff_adds = 40
let soff_dels = 48
let soff_new_terms = 56
let soff_parent_terms = 64
let soff_table = 72
let seg_section_count = 4

(* Manifest header word offsets. One section: the member table. *)
let moff_members = 24
let moff_slices = 32
let moff_stamp = 40
let moff_triples = 48
let moff_terms = 56
let moff_distinct_s = 64
let moff_distinct_o = 72
let moff_distinct_p = 80
let moff_table = 88

let fail path fault msg = Err.fail (Err.Store_error { path; fault; msg })

(* ------------------------------------------------------------------ *)
(* Content stamp: FNV-1a folded into 62 bits so the stamp is a
   non-negative OCaml int on every 64-bit platform (and so [-1 - stamp]
   is always a valid negative identity).                               *)
(* ------------------------------------------------------------------ *)

let fnv_basis = 0x3bf29ce484222325
let fnv_prime = 0x100000001b3
let fnv_byte h b = ((h lxor b) * fnv_prime) land max_int

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let identity_of_stamp stamp = -1 - stamp

(* The chain stamp after applying one segment: fold the parent chain
   stamp and the segment's payload stamp. Associating left over the
   chain gives every (base, segment list) prefix a distinct identity,
   and a shard manifest folds member stamps the same way (its payload
   contains them), so composed identities compose. *)
let fold_stamp chain seg =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int chain);
  Bytes.set_int64_le b 8 (Int64.of_int seg);
  fnv_string fnv_basis (Bytes.to_string b)

(* ------------------------------------------------------------------ *)
(* Term serialization: a one-byte tag and the term's text. Both term
   constructors reject the empty string, so entries are >= 2 bytes and
   the byte comparison used by [term-sort] is total and unambiguous
   (tags differ before texts are compared).                            *)
(* ------------------------------------------------------------------ *)

let serialize_term = function
  | Rdf.Term.Iri i -> "I" ^ Rdf.Iri.to_string i
  | Rdf.Term.Var v -> "V" ^ Rdf.Variable.to_string v

let deserialize_term path s =
  let corrupt msg = fail path Err.Corrupt msg in
  if String.length s < 2 then corrupt "dictionary entry shorter than tag + text"
  else
    let text = String.sub s 1 (String.length s - 1) in
    match s.[0] with
    | 'I' -> (
        try Rdf.Term.iri text
        with Invalid_argument _ -> corrupt "invalid IRI in dictionary blob")
    | 'V' -> (
        try Rdf.Term.var text
        with Invalid_argument _ ->
          corrupt "invalid variable name in dictionary blob")
    | _ -> corrupt "unknown term tag in dictionary blob"

(* The three permutation keys (duplicated from Encoded_graph, which
   keeps them private — three one-liners are cheaper than widening that
   API). *)
let rot_spo (s, p, o) = (s, p, o)
let rot_pos (s, p, o) = (p, o, s)
let rot_osp (s, p, o) = (o, s, p)

(* ------------------------------------------------------------------ *)
(* Writer plumbing                                                     *)
(* ------------------------------------------------------------------ *)

let add_word buf v = Buffer.add_int64_le buf (Int64.of_int v)

(* Concatenate section buffers 16-byte aligned after the header,
   returning the payload and the (offset, length) table. *)
let build_sections bufs =
  let payload = Buffer.create 4096 in
  let table =
    Array.map
      (fun buf ->
        let pos = header_size + Buffer.length payload in
        let pad = (16 - (pos mod 16)) mod 16 in
        Buffer.add_string payload (String.make pad '\000');
        let entry = (pos + pad, Buffer.length buf) in
        Buffer.add_buffer payload buf;
        entry)
      bufs
  in
  (payload, table)

(* Persist the enclosing directory entry (after a rename). Best-effort:
   some filesystems refuse directory opens or fsync, and the file is
   already fully written. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dir ->
      (try Unix.fsync dir with Unix.Unix_error _ -> ());
      Unix.close dir

let atomic_write path ~header ~payload =
  let io_fail msg = Err.fail (Err.Io_error { path; msg }) in
  let tmp = path ^ ".tmp" in
  let oc = try open_out_bin tmp with Sys_error msg -> io_fail msg in
  (try
     Buffer.output_buffer oc header;
     Buffer.output_buffer oc payload;
     flush oc;
     (* The temp file's bytes must reach the disk before the rename
        publishes it, or a crash right after could leave a truncated
        store at the final path — the rename is atomic against readers
        only; durability needs the fsync. *)
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     (match e with
     | Sys_error msg -> io_fail msg
     | Unix.Unix_error (err, _, _) -> io_fail (Unix.error_message err)
     | e -> raise e));
  (try Sys.rename tmp path with Sys_error msg -> io_fail msg);
  fsync_dir path

let save enc path =
  let n = E.cardinal enc in
  let dict = E.dictionary enc in
  let n_terms = Rdf.Dictionary.size dict in
  (* Dictionary sections: blob + offsets in id order, and the ids sorted
     by serialized bytes for the reader's reverse lookup. *)
  let ser =
    Array.init n_terms (fun id -> serialize_term (Rdf.Dictionary.term_of dict id))
  in
  let order = Array.init n_terms Fun.id in
  Array.sort (fun a b -> String.compare ser.(a) ser.(b)) order;
  let offsets = Buffer.create ((n_terms + 1) * 8) in
  let blob = Buffer.create 1024 in
  Array.iter
    (fun s ->
      add_word offsets (Buffer.length blob);
      Buffer.add_string blob s)
    ser;
  add_word offsets (Buffer.length blob);
  let term_sort = Buffer.create (n_terms * 8) in
  Array.iter (fun id -> add_word term_sort id) order;
  (* Index sections: the raw tuples of each permutation, in its order. *)
  let index_section nth =
    let buf = Buffer.create (n * 24) in
    for i = 0 to n - 1 do
      let s, p, o = nth enc i in
      add_word buf s;
      add_word buf p;
      add_word buf o
    done;
    buf
  in
  let spo = index_section E.nth_spo
  and pos = index_section E.nth_pos
  and osp = index_section E.nth_osp in
  (* Statistics rows: one per distinct predicate, ascending pid (the POS
     permutation enumerates predicates in order). Computed now — loads
     answer the planner from these without scanning the mapping. *)
  let preds = ref [] in
  let last = ref min_int in
  for i = 0 to n - 1 do
    let _, p, _ = E.nth_pos enc i in
    if p <> !last then begin
      preds := p :: !preds;
      last := p
    end
  done;
  let preds = List.rev !preds in
  let pstats = Buffer.create 64 in
  List.iter
    (fun p ->
      let s = E.predicate_stats enc p in
      add_word pstats p;
      add_word pstats s.E.triples;
      add_word pstats s.E.distinct_subjects;
      add_word pstats s.E.distinct_objects)
    preds;
  let payload, table =
    build_sections [| offsets; term_sort; blob; spo; pos; osp; pstats |]
  in
  let stamp = fnv_string fnv_basis (Buffer.contents payload) in
  let header = Buffer.create header_size in
  Buffer.add_string header magic;
  add_word header format_version;
  add_word header byte_order_mark;
  add_word header n;
  add_word header n_terms;
  add_word header stamp;
  add_word header (List.length preds);
  add_word header (E.distinct_subjects enc);
  add_word header (E.distinct_objects enc);
  add_word header (E.distinct_predicates enc);
  Array.iter
    (fun (off, len) ->
      add_word header off;
      add_word header len)
    table;
  Buffer.add_string header
    (String.make (header_size - Buffer.length header) '\000');
  atomic_write path ~header ~payload

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)
(* ------------------------------------------------------------------ *)

(* A file shorter than the magic itself is [Truncated] only when the
   bytes present are a prefix of one of the family magics — a real
   store cut off mid-write; anything else was never a store at all
   ([Bad_magic]). An empty file counts as truncated. *)
let read_magic path ic ~size ~expected =
  let mlen = String.length expected in
  if size < mlen then begin
    let have = really_input_string ic size in
    let is_prefix m =
      String.length m >= size && String.equal (String.sub m 0 size) have
    in
    if List.exists is_prefix [ magic; delta_magic; manifest_magic ] then
      fail path Err.Truncated "file shorter than the store magic"
    else fail path Err.Bad_magic "not a compiled store"
  end
  else
    let found = really_input_string ic mlen in
    if not (String.equal found expected) then
      fail path Err.Bad_magic "not a compiled store"

let check_version_bom path header =
  let word off = Int64.to_int (String.get_int64_le header off) in
  let version = word off_version in
  if version <> format_version then
    fail path
      (Err.Version_mismatch { found = version; expected = format_version })
      "";
  if word off_bom <> byte_order_mark then
    fail path Err.Corrupt "byte-order mark mismatch (endianness or corruption)"

(* Bounds, expected lengths (a negative expectation means free-form) and
   pairwise disjointness of a section table: in-bounds but overlapping
   offsets would alias dictionary/index bytes and yield wrong answers
   without any out-of-bounds access to catch it. *)
let validate_sections path ~size ~table ~expected =
  Array.iteri
    (fun k (off, len) ->
      if off < header_size || len < 0 || len > size || off > size - len then
        fail path Err.Truncated
          (Printf.sprintf "section %d extends past end-of-file" k);
      if expected.(k) >= 0 && len <> expected.(k) then
        fail path Err.Corrupt
          (Printf.sprintf "section %d length disagrees with header counts" k))
    table;
  let order = Array.init (Array.length table) Fun.id in
  Array.sort (fun a b -> compare (fst table.(a)) (fst table.(b))) order;
  let last_end = ref header_size in
  Array.iter
    (fun k ->
      let off, len = table.(k) in
      if len > 0 then begin
        if off < !last_end then
          fail path Err.Corrupt
            (Printf.sprintf "section %d overlaps another section" k);
        last_end := off + len
      end)
    order

type header = {
  h_triples : int;
  h_terms : int;
  h_stamp : int;
  h_preds : int;
  h_distinct_s : int;
  h_distinct_o : int;
  h_distinct_p : int;
  h_table : (int * int) array;
  h_file_bytes : int;
}

(* Read and validate the fixed header through ordinary channel I/O (the
   mappings come later, and only for a header that checked out). *)
let read_header path ic =
  let size = in_channel_length ic in
  read_magic path ic ~size ~expected:magic;
  if size < header_size then fail path Err.Truncated "incomplete header";
  let rest = really_input_string ic (header_size - String.length magic) in
  let header = magic ^ rest in
  check_version_bom path header;
  let word off = Int64.to_int (String.get_int64_le header off) in
  let h =
    {
      h_triples = word off_triples;
      h_terms = word off_terms;
      h_stamp = word off_stamp;
      h_preds = word off_preds;
      h_distinct_s = word off_distinct_s;
      h_distinct_o = word off_distinct_o;
      h_distinct_p = word off_distinct_p;
      h_table =
        Array.init section_count (fun k ->
            (word (off_table + (16 * k)), word (off_table + (16 * k) + 8)));
      h_file_bytes = size;
    }
  in
  if h.h_triples < 0 || h.h_terms < 0 || h.h_preds < 0 || h.h_stamp < 0 then
    fail path Err.Corrupt "negative count in header";
  (* counts must physically fit in the file BEFORE the expected-length
     multiplications below — a flipped high bit would wrap them mod the
     int range and alias a valid length *)
  if
    h.h_triples > size / 24 || h.h_terms > size / 8 || h.h_preds > size / 32
  then fail path Err.Truncated "file too short for the header counts";
  if
    h.h_distinct_s < 0
    || h.h_distinct_s > h.h_terms
    || h.h_distinct_o < 0
    || h.h_distinct_o > h.h_terms
    || h.h_distinct_p < 0
    || h.h_distinct_p > h.h_terms
  then fail path Err.Corrupt "distinct-count statistics out of range";
  validate_sections path ~size ~table:h.h_table
    ~expected:
      [|
        8 * (h.h_terms + 1);
        8 * h.h_terms;
        -1 (* blob: free-form length *);
        24 * h.h_triples;
        24 * h.h_triples;
        24 * h.h_triples;
        32 * h.h_preds;
      |];
  h

let map_section path fd kind ~pos ~bytes ~elt_bytes =
  if bytes = 0 then None
  else
    try
      let g =
        Unix.map_file fd ~pos:(Int64.of_int pos) kind Bigarray.c_layout false
          [| bytes / elt_bytes |]
      in
      Some (Bigarray.array1_of_genarray g)
    with Unix.Unix_error (e, _, _) ->
      Err.fail
        (Err.Io_error
           { path; msg = "mmap failed: " ^ Unix.error_message e })

let verify_payload path fd ~file_bytes ~expect =
  let payload_bytes = file_bytes - header_size in
  let stamp =
    match
      map_section path fd Bigarray.char ~pos:header_size ~bytes:payload_bytes
        ~elt_bytes:1
    with
    | None -> fnv_basis
    | Some bytes ->
        let hash = ref fnv_basis in
        for i = 0 to payload_bytes - 1 do
          hash := fnv_byte !hash (Char.code (A1.get bytes i))
        done;
        !hash
  in
  if stamp <> expect then
    fail path Err.Checksum_mismatch
      (Printf.sprintf "payload hashes to %#x, header says %#x" stamp expect)

let verify_stamp path fd h =
  verify_payload path fd ~file_bytes:h.h_file_bytes ~expect:h.h_stamp

let with_store path f =
  let ic =
    try open_in_bin path
    with Sys_error msg -> Err.fail (Err.Io_error { path; msg })
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let h = read_header path ic in
      (* The mappings outlive the descriptor: closing the channel after
         [f] returns does not unmap anything. *)
      f h (Unix.descr_of_in_channel ic))

(* The dictionary view over the mapped offsets / sort / blob sections.
   Offsets are validated at each decode (not eagerly: an O(n_terms)
   scan would defeat the O(pages touched) load), so a corrupt blob
   surfaces as [Store_error Corrupt] at first touch, never a crash —
   every mapping access below is bounds-checked by Bigarray. *)
let dict_view path ~offsets ~term_sort ~blob ~blob_len ~n_terms =
  let entry id =
    let lo = A1.get offsets id and hi = A1.get offsets (id + 1) in
    if lo < 0 || hi < lo || hi > blob_len then
      fail path Err.Corrupt
        (Printf.sprintf "dictionary offsets for id %d out of range" id);
    (lo, hi - lo)
  in
  let blob_get =
    match blob with
    | Some b -> fun i -> A1.get b i
    | None ->
        fun _ -> fail path Err.Corrupt "term refers into an empty blob"
  in
  let view_term id =
    let lo, len = entry id in
    deserialize_term path (String.init len (fun i -> blob_get (lo + i)))
  in
  (* Compare term [id]'s bytes against [probe] without materialising the
     entry. *)
  let compare_entry id probe =
    let lo, len = entry id in
    let plen = String.length probe in
    let rec go i =
      if i = len || i = plen then compare len plen
      else
        let c = Char.compare (blob_get (lo + i)) probe.[i] in
        if c <> 0 then c else go (i + 1)
    in
    go 0
  in
  let sorted_id rank =
    match term_sort with
    | None -> fail path Err.Corrupt "term-sort section missing"
    | Some ts ->
        let id = A1.get ts rank in
        if id < 0 || id >= n_terms then
          fail path Err.Corrupt "term-sort id out of range"
        else id
  in
  let view_find term =
    let probe = serialize_term term in
    let lo = ref 0 and hi = ref n_terms in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if compare_entry (sorted_id mid) probe < 0 then lo := mid + 1
      else hi := mid
    done;
    if !lo >= n_terms then None
    else
      let id = sorted_id !lo in
      if compare_entry id probe = 0 then Some id else None
  in
  { Rdf.Dictionary.view_size = n_terms; view_term; view_find }

let triple_view path section n =
  match section with
  | None ->
      {
        E.fn = 0;
        fget = (fun _ -> fail path Err.Corrupt "probe into an empty index");
      }
  | Some a ->
      {
        E.fn = n;
        fget =
          (fun i -> (A1.get a (3 * i), A1.get a ((3 * i) + 1), A1.get a ((3 * i) + 2)));
      }

(* Per-predicate rows, pid-ascending; checked eagerly (rows = distinct
   predicates, a tiny section) so binary search is sound. A predicate
   with no row genuinely has no triples: the writer emits a row for
   every distinct predicate. *)
let stats_seed path ~pstats ~h =
  let zero = { E.triples = 0; distinct_subjects = 0; distinct_objects = 0 } in
  let row rank =
    match pstats with
    | None -> fail path Err.Corrupt "statistics row missing"
    | Some a ->
        ( A1.get a (4 * rank),
          {
            E.triples = A1.get a ((4 * rank) + 1);
            distinct_subjects = A1.get a ((4 * rank) + 2);
            distinct_objects = A1.get a ((4 * rank) + 3);
          } )
  in
  for rank = 0 to h.h_preds - 1 do
    let pid, s = row rank in
    if
      pid < 0
      || s.E.triples < 0
      || s.E.distinct_subjects < 0
      || s.E.distinct_objects < 0
      || (rank > 0 && pid <= fst (row (rank - 1)))
    then fail path Err.Corrupt "statistics rows unsorted or out of range"
  done;
  let seed_predicate p =
    let lo = ref 0 and hi = ref h.h_preds in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst (row mid) < p then lo := mid + 1 else hi := mid
    done;
    if !lo < h.h_preds then
      let pid, s = row !lo in
      Some (if pid = p then s else zero)
    else Some zero
  in
  {
    E.seed_subjects = Some h.h_distinct_s;
    seed_objects = Some h.h_distinct_o;
    seed_predicates = Some h.h_distinct_p;
    seed_predicate;
  }

(* ------------------------------------------------------------------ *)
(* Delta segments                                                      *)
(* ------------------------------------------------------------------ *)

let seg_path base k = Printf.sprintf "%s.d%d" base k

(* The segment chain of a base store: <base>.d1, .d2, ... up to the
   first missing index. A hole in the numbering would silently drop the
   chain's tail, so probe one past the first gap and fail loudly. *)
let discover_segments path =
  let rec go acc k =
    let p = seg_path path k in
    if Sys.file_exists p then go (p :: acc) (k + 1)
    else begin
      if Sys.file_exists (seg_path path (k + 1)) then
        fail
          (seg_path path (k + 1))
          Err.Corrupt
          (Printf.sprintf "segment chain has a gap: %s is missing"
             (Filename.basename (seg_path path k)));
      List.rev acc
    end
  in
  go [] 1

type seg_header = {
  sg_parent : int;
  sg_stamp : int;
  sg_adds : int;
  sg_dels : int;
  sg_new_terms : int;
  sg_parent_terms : int;
  sg_table : (int * int) array;
  sg_file_bytes : int;
}

type seg_data = {
  sd_path : string;
  sd_header : seg_header;
  sd_new_terms : string array;  (* serialized, ids from sg_parent_terms *)
  sd_adds : (int * int * int) array;  (* sorted by (s,p,o) *)
  sd_dels : (int * int * int) array;
}

(* Segments are O(delta): read them eagerly through the channel, no
   mapping needed. *)
let read_segment ?(verify = false) path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> Err.fail (Err.Io_error { path; msg })
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      read_magic path ic ~size ~expected:delta_magic;
      if size < header_size then
        fail path Err.Truncated "incomplete segment header";
      let rest = really_input_string ic (header_size - String.length delta_magic) in
      let header = delta_magic ^ rest in
      check_version_bom path header;
      let word off = Int64.to_int (String.get_int64_le header off) in
      let sg =
        {
          sg_parent = word soff_parent;
          sg_stamp = word soff_stamp;
          sg_adds = word soff_adds;
          sg_dels = word soff_dels;
          sg_new_terms = word soff_new_terms;
          sg_parent_terms = word soff_parent_terms;
          sg_table =
            Array.init seg_section_count (fun k ->
                (word (soff_table + (16 * k)), word (soff_table + (16 * k) + 8)));
          sg_file_bytes = size;
        }
      in
      if
        sg.sg_parent < 0 || sg.sg_stamp < 0 || sg.sg_adds < 0 || sg.sg_dels < 0
        || sg.sg_new_terms < 0 || sg.sg_parent_terms < 0
      then fail path Err.Corrupt "negative count in segment header";
      (* fit check before the length multiplications (overflow aliasing) *)
      if
        sg.sg_adds > size / 24 || sg.sg_dels > size / 24
        || sg.sg_new_terms > size / 8
      then fail path Err.Truncated "file too short for the segment counts";
      validate_sections path ~size ~table:sg.sg_table
        ~expected:
          [|
            8 * (sg.sg_new_terms + 1);
            -1 (* blob *);
            24 * sg.sg_adds;
            24 * sg.sg_dels;
          |];
      if verify then begin
        seek_in ic header_size;
        let payload = really_input_string ic (size - header_size) in
        let stamp = fnv_string fnv_basis payload in
        if stamp <> sg.sg_stamp then
          fail path Err.Checksum_mismatch
            (Printf.sprintf "payload hashes to %#x, header says %#x" stamp
               sg.sg_stamp)
      end;
      let section k =
        let off, len = sg.sg_table.(k) in
        seek_in ic off;
        really_input_string ic len
      in
      let words s =
        Array.init (String.length s / 8) (fun i ->
            Int64.to_int (String.get_int64_le s (8 * i)))
      in
      let offsets = words (section 0) in
      let blob = section 1 in
      let new_terms =
        Array.init sg.sg_new_terms (fun i ->
            let lo = offsets.(i) and hi = offsets.(i + 1) in
            if lo < 0 || hi < lo || hi > String.length blob then
              fail path Err.Corrupt "segment dictionary offsets out of range";
            String.sub blob lo (hi - lo))
      in
      let triples s n =
        Array.init n (fun i ->
            let w j = Int64.to_int (String.get_int64_le s ((24 * i) + (8 * j))) in
            (w 0, w 1, w 2))
      in
      {
        sd_path = path;
        sd_header = sg;
        sd_new_terms = new_terms;
        sd_adds = triples (section 2) sg.sg_adds;
        sd_dels = triples (section 3) sg.sg_dels;
      })

let write_segment path ~parent_stamp ~parent_terms ~new_terms ~adds ~dels =
  let offsets = Buffer.create ((Array.length new_terms + 1) * 8) in
  let blob = Buffer.create 256 in
  Array.iter
    (fun s ->
      add_word offsets (Buffer.length blob);
      Buffer.add_string blob s)
    new_terms;
  add_word offsets (Buffer.length blob);
  let triples_buf arr =
    let buf = Buffer.create (Array.length arr * 24) in
    Array.iter
      (fun (s, p, o) ->
        add_word buf s;
        add_word buf p;
        add_word buf o)
      arr;
    buf
  in
  let payload, table =
    build_sections [| offsets; blob; triples_buf adds; triples_buf dels |]
  in
  let stamp = fnv_string fnv_basis (Buffer.contents payload) in
  let header = Buffer.create header_size in
  Buffer.add_string header delta_magic;
  add_word header format_version;
  add_word header byte_order_mark;
  add_word header parent_stamp;
  add_word header stamp;
  add_word header (Array.length adds);
  add_word header (Array.length dels);
  add_word header (Array.length new_terms);
  add_word header parent_terms;
  Array.iter
    (fun (off, len) ->
      add_word header off;
      add_word header len)
    table;
  Buffer.add_string header
    (String.make (header_size - Buffer.length header) '\000');
  atomic_write path ~header ~payload;
  stamp

(* Chain validation: each segment must name the running chain stamp as
   its parent and agree on where the dictionary stood. Returns the final
   (chain stamp, total terms). *)
let fold_chain h segs =
  List.fold_left
    (fun (stamp, terms) sd ->
      let sg = sd.sd_header in
      if sg.sg_parent <> stamp then
        fail sd.sd_path
          (Err.Delta_chain_broken
             { expected_parent = stamp; found_parent = sg.sg_parent })
          "";
      if sg.sg_parent_terms <> terms then
        fail sd.sd_path Err.Corrupt
          "segment dictionary base disagrees with the chain";
      (fold_stamp stamp sg.sg_stamp, terms + sg.sg_new_terms))
    (h.h_stamp, h.h_terms) segs

(* ------------------------------------------------------------------ *)
(* Loading: base store (possibly under a segment chain)                *)
(* ------------------------------------------------------------------ *)

let load_store ?(verify = false) path =
  let segs = List.map (read_segment ~verify) (discover_segments path) in
  with_store path (fun h fd ->
      if verify then verify_stamp path fd h;
      let sec k = h.h_table.(k) in
      let map_ints k =
        let pos, bytes = sec k in
        map_section path fd Bigarray.int ~pos ~bytes ~elt_bytes:8
      in
      let offsets =
        match map_ints 0 with
        | Some a -> a
        | None -> fail path Err.Corrupt "dictionary offsets section empty"
      in
      let term_sort = map_ints 1 in
      let blob =
        let pos, bytes = sec 2 in
        map_section path fd Bigarray.char ~pos ~bytes ~elt_bytes:1
      in
      let base_dict_view =
        dict_view path ~offsets ~term_sort ~blob ~blob_len:(snd (sec 2))
          ~n_terms:h.h_terms
      in
      let base_spo = triple_view path (map_ints 3) h.h_triples
      and base_pos = triple_view path (map_ints 4) h.h_triples
      and base_osp = triple_view path (map_ints 5) h.h_triples in
      let base_seed = stats_seed path ~pstats:(map_ints 6) ~h in
      match segs with
      | [] ->
          E.of_views
            ~identity:(identity_of_stamp h.h_stamp)
            ~dict:(Rdf.Dictionary.of_view base_dict_view)
            ~spo:base_spo ~pos:base_pos ~osp:base_osp ~stats:base_seed ()
      | segs ->
          let chain_stamp, total_terms = fold_chain h segs in
          (* Composed dictionary: base ids unchanged, segment growth
             appended above them. A find that misses the base scans the
             segment entries linearly — O(delta), and memoized by the
             Dictionary wrapper. *)
          let extra = Array.concat (List.map (fun sd -> sd.sd_new_terms) segs) in
          let view_term id =
            if id < h.h_terms then base_dict_view.Rdf.Dictionary.view_term id
            else if id - h.h_terms < Array.length extra then
              deserialize_term path extra.(id - h.h_terms)
            else fail path Err.Corrupt "term id beyond the segment dictionary"
          in
          let view_find term =
            match base_dict_view.Rdf.Dictionary.view_find term with
            | Some id -> Some id
            | None ->
                let probe = serialize_term term in
                let found = ref None in
                Array.iteri
                  (fun i s ->
                    if !found = None && String.equal s probe then
                      found := Some (h.h_terms + i))
                  extra;
                !found
          in
          let dict =
            Rdf.Dictionary.of_view
              { Rdf.Dictionary.view_size = total_terms; view_term; view_find }
          in
          let adds, dels =
            Overlay.compose
              ~base_mem:(fun t -> Overlay.view_mem base_spo rot_spo t)
              ~segments:(List.map (fun sd -> (sd.sd_adds, sd.sd_dels)) segs)
              ()
          in
          let spo = Overlay.merge ~base:base_spo ~rot:rot_spo ~adds ~dels ()
          and pos = Overlay.merge ~base:base_pos ~rot:rot_pos ~adds ~dels ()
          and osp = Overlay.merge ~base:base_osp ~rot:rot_osp ~adds ~dels () in
          (* Stats under the overlay: predicates the delta never touched
             keep their exact base rows; touched predicates (and the
             global distinct counts) fall back to the encoded layer's
             exact scans over the merged views, so the planner's figures
             match a monolithic recompile bit for bit. *)
          let stats =
            if Array.length adds = 0 && Array.length dels = 0 then base_seed
            else begin
              let touched = Hashtbl.create 16 in
              Array.iter (fun (_, p, _) -> Hashtbl.replace touched p ()) adds;
              Array.iter (fun (_, p, _) -> Hashtbl.replace touched p ()) dels;
              {
                E.seed_subjects = None;
                seed_objects = None;
                seed_predicates = None;
                seed_predicate =
                  (fun p ->
                    if Hashtbl.mem touched p then None
                    else base_seed.E.seed_predicate p);
              }
            end
          in
          E.of_views
            ~identity:(identity_of_stamp chain_stamp)
            ~dict ~spo ~pos ~osp ~stats ())

(* ------------------------------------------------------------------ *)
(* Shard manifests                                                     *)
(* ------------------------------------------------------------------ *)

type member_rec = {
  mr_slice : int;
  mr_stamp : int;
  mr_triples : int;
  mr_file : string;  (* relative to the manifest's directory *)
}

type man_header = {
  mh_members : int;
  mh_slices : int;
  mh_stamp : int;
  mh_triples : int;
  mh_terms : int;
  mh_distinct_s : int;
  mh_distinct_o : int;
  mh_distinct_p : int;
  mh_table : (int * int) array;
  mh_file_bytes : int;
}

let write_manifest path ~slices ~members ~totals =
  let records = Buffer.create 256 in
  List.iter
    (fun r ->
      add_word records r.mr_slice;
      add_word records r.mr_stamp;
      add_word records r.mr_triples;
      add_word records (String.length r.mr_file);
      Buffer.add_string records r.mr_file;
      let pad = (8 - (String.length r.mr_file mod 8)) mod 8 in
      Buffer.add_string records (String.make pad '\000'))
    members;
  let payload, table = build_sections [| records |] in
  (* The stamp covers the member table — and with it every member's
     stamp — so the manifest identity folds the member identities. *)
  let stamp = fnv_string fnv_basis (Buffer.contents payload) in
  let total_triples, n_terms, d_s, d_o, d_p = totals in
  let header = Buffer.create header_size in
  Buffer.add_string header manifest_magic;
  add_word header format_version;
  add_word header byte_order_mark;
  add_word header (List.length members);
  add_word header slices;
  add_word header stamp;
  add_word header total_triples;
  add_word header n_terms;
  add_word header d_s;
  add_word header d_o;
  add_word header d_p;
  Array.iter
    (fun (off, len) ->
      add_word header off;
      add_word header len)
    table;
  Buffer.add_string header
    (String.make (header_size - Buffer.length header) '\000');
  atomic_write path ~header ~payload;
  stamp

let read_manifest ?(verify = false) path =
  let ic =
    try open_in_bin path
    with Sys_error msg -> Err.fail (Err.Io_error { path; msg })
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let size = in_channel_length ic in
      read_magic path ic ~size ~expected:manifest_magic;
      if size < header_size then
        fail path Err.Truncated "incomplete manifest header";
      let rest =
        really_input_string ic (header_size - String.length manifest_magic)
      in
      let header = manifest_magic ^ rest in
      check_version_bom path header;
      let word off = Int64.to_int (String.get_int64_le header off) in
      let mh =
        {
          mh_members = word moff_members;
          mh_slices = word moff_slices;
          mh_stamp = word moff_stamp;
          mh_triples = word moff_triples;
          mh_terms = word moff_terms;
          mh_distinct_s = word moff_distinct_s;
          mh_distinct_o = word moff_distinct_o;
          mh_distinct_p = word moff_distinct_p;
          mh_table = [| (word moff_table, word (moff_table + 8)) |];
          mh_file_bytes = size;
        }
      in
      if
        mh.mh_members < 1 || mh.mh_slices < 1 || mh.mh_stamp < 0
        || mh.mh_triples < 0 || mh.mh_terms < 0
      then fail path Err.Corrupt "negative or empty count in manifest header";
      if mh.mh_members <> mh.mh_slices then
        fail path Err.Corrupt "manifest member count disagrees with slices";
      (* each member record is at least four words *)
      if mh.mh_members > size / 32 then
        fail path Err.Truncated "file too short for the member table";
      if
        mh.mh_distinct_s < 0
        || mh.mh_distinct_s > mh.mh_terms
        || mh.mh_distinct_o < 0
        || mh.mh_distinct_o > mh.mh_terms
        || mh.mh_distinct_p < 0
        || mh.mh_distinct_p > mh.mh_terms
      then fail path Err.Corrupt "distinct-count statistics out of range";
      validate_sections path ~size ~table:mh.mh_table ~expected:[| -1 |];
      if verify then begin
        seek_in ic header_size;
        let payload = really_input_string ic (size - header_size) in
        let stamp = fnv_string fnv_basis payload in
        if stamp <> mh.mh_stamp then
          fail path Err.Checksum_mismatch
            (Printf.sprintf "payload hashes to %#x, header says %#x" stamp
               mh.mh_stamp)
      end;
      let off, len = mh.mh_table.(0) in
      seek_in ic off;
      let table = really_input_string ic len in
      let cursor = ref 0 in
      let next_word () =
        if !cursor + 8 > len then
          fail path Err.Corrupt "manifest member table truncated";
        let v = Int64.to_int (String.get_int64_le table !cursor) in
        cursor := !cursor + 8;
        v
      in
      let records =
        List.init mh.mh_members (fun _ ->
            let slice = next_word () in
            let stamp = next_word () in
            let triples = next_word () in
            let plen = next_word () in
            if plen <= 0 || plen > len - !cursor then
              fail path Err.Corrupt "manifest member path out of range";
            let file = String.sub table !cursor plen in
            cursor := !cursor + plen + ((8 - (plen mod 8)) mod 8);
            if slice < 0 || slice >= mh.mh_slices || stamp < 0 || triples < 0
            then fail path Err.Corrupt "manifest member record out of range";
            { mr_slice = slice; mr_stamp = stamp; mr_triples = triples;
              mr_file = file })
      in
      (mh, records))

(* A member must exist, carry the pinned stamp and the full dictionary,
   and have no trailing delta segments (those would make its content
   diverge from the stamp the manifest folded). *)
let check_member manifest_path ~dir ~terms ~verify r =
  let mp = Filename.concat dir r.mr_file in
  let mismatch msg =
    fail manifest_path (Err.Manifest_mismatch { member = r.mr_file }) msg
  in
  if not (Sys.file_exists mp) then mismatch "member store is missing";
  (match discover_segments mp with
  | [] -> ()
  | _ -> mismatch "member store has delta segments (compact or re-shard)");
  with_store mp (fun h fd ->
      if h.h_stamp <> r.mr_stamp then
        mismatch
          (Printf.sprintf "member stamp %#x, manifest pins %#x" h.h_stamp
             r.mr_stamp);
      if h.h_terms <> terms then
        mismatch "member dictionary disagrees with the manifest";
      if h.h_triples <> r.mr_triples then
        mismatch "member triple count disagrees with the manifest";
      if verify then verify_stamp mp fd h;
      h)

let load_manifest ?(verify = false) path =
  let mh, records = read_manifest ~verify path in
  let dir = Filename.dirname path in
  let headers =
    List.map (fun r -> (r, check_member path ~dir ~terms:mh.mh_terms ~verify r))
      records
  in
  let by_slice = Array.make mh.mh_slices None in
  List.iter
    (fun (r, _) ->
      if by_slice.(r.mr_slice) <> None then
        fail path Err.Corrupt "manifest member slices not a permutation";
      by_slice.(r.mr_slice) <- Some r)
    headers;
  let slot k =
    match by_slice.(k) with
    | Some r -> r
    | None -> fail path Err.Corrupt "manifest member slices not a permutation"
  in
  let members_sum =
    List.fold_left (fun acc (r, _) -> acc + r.mr_triples) 0 headers
  in
  if members_sum <> mh.mh_triples then
    fail path Err.Corrupt "member triple counts disagree with the manifest total";
  let member_path k = Filename.concat dir (slot k).mr_file in
  (* Shared dictionary: every member carries the full term table, so ids
     are global — serve it from slice 0's sections, mapped on first
     touch. The Dictionary wrapper serializes view calls, so the lazy
     force is domain-safe. *)
  let dict_view0 =
    lazy
      (let mp = member_path 0 in
       with_store mp (fun h fd ->
           let sec k = h.h_table.(k) in
           let map_ints k =
             let pos, bytes = sec k in
             map_section mp fd Bigarray.int ~pos ~bytes ~elt_bytes:8
           in
           let offsets =
             match map_ints 0 with
             | Some a -> a
             | None -> fail mp Err.Corrupt "dictionary offsets section empty"
           in
           let blob =
             let pos, bytes = sec 2 in
             map_section mp fd Bigarray.char ~pos ~bytes ~elt_bytes:1
           in
           dict_view mp ~offsets ~term_sort:(map_ints 1) ~blob
             ~blob_len:(snd (sec 2)) ~n_terms:h.h_terms))
  in
  let dict =
    Rdf.Dictionary.of_view
      {
        Rdf.Dictionary.view_size = mh.mh_terms;
        view_term =
          (fun id -> (Lazy.force dict_view0).Rdf.Dictionary.view_term id);
        view_find =
          (fun t -> (Lazy.force dict_view0).Rdf.Dictionary.view_find t);
      }
  in
  let load_member k =
    lazy
      (let mp = member_path k in
       with_store mp (fun h fd ->
           let sec i = h.h_table.(i) in
           let map_ints i =
             let pos, bytes = sec i in
             map_section mp fd Bigarray.int ~pos ~bytes ~elt_bytes:8
           in
           E.of_views
             ~identity:(identity_of_stamp h.h_stamp)
             ~dict
             ~spo:(triple_view mp (map_ints 3) h.h_triples)
             ~pos:(triple_view mp (map_ints 4) h.h_triples)
             ~osp:(triple_view mp (map_ints 5) h.h_triples)
             ~stats:(stats_seed mp ~pstats:(map_ints 6) ~h)
             ()))
  in
  (* Slice routing hashes the predicate's serialized bytes — identical
     in every store that contains the term, so the route is
     id-independent and stable across compiles. *)
  let owner p =
    if p < 0 || p >= mh.mh_terms then 0
    else
      fnv_string fnv_basis (serialize_term (Rdf.Dictionary.term_of dict p))
      mod mh.mh_slices
  in
  let stats =
    {
      E.seed_subjects = Some mh.mh_distinct_s;
      seed_objects = Some mh.mh_distinct_o;
      seed_predicates = Some mh.mh_distinct_p;
      seed_predicate = (fun _ -> None)
      (* per-predicate rows live in the owning member; the union layer
         routes there *);
    }
  in
  E.union
    ~identity:(identity_of_stamp mh.mh_stamp)
    ~dict
    ~members:(Array.init mh.mh_slices load_member)
    ~owner ~total:mh.mh_triples ~stats ()

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

let sniff path =
  match open_in_bin path with
  | exception Sys_error msg -> Err.fail (Err.Io_error { path; msg })
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let n = min (in_channel_length ic) (String.length magic) in
          really_input_string ic n)

let is_manifest path = String.equal (sniff path) manifest_magic

let load ?(verify = false) path =
  if is_manifest path then load_manifest ~verify path
  else load_store ~verify path

let load_graph ?verify path =
  let enc = load ?verify path in
  E.register enc;
  (* The deferred term-level decode: only forced by consumers outside
     the encoded path (naive evaluation, printing); runs on the same
     dictionary, so decoded terms are shared with the store's memo. *)
  Rdf.Graph.deferred ~epoch:(E.epoch enc) (fun () ->
      let dict = E.dictionary enc in
      let acc = ref [] in
      for i = E.cardinal enc - 1 downto 0 do
        acc := Rdf.Dictionary.decode_triple dict (E.nth_spo enc i) :: !acc
      done;
      Rdf.Index.of_triples !acc)

(* ------------------------------------------------------------------ *)
(* Append / compact / shard                                            *)
(* ------------------------------------------------------------------ *)

type append_result = {
  app_file : string;
  app_adds : int;
  app_dels : int;
  app_new_terms : int;
  app_chain_stamp : int;
}

let append ?(adds = []) ?(dels = []) path =
  if is_manifest path then
    Err.fail
      (Err.Invalid_input
         "cannot append to a shard manifest — append to a plain store and \
          re-shard, or query the members directly");
  let n_existing = List.length (discover_segments path) in
  let enc = load_store path in
  let dict = E.dictionary enc in
  let parent_terms = Rdf.Dictionary.size dict in
  let module TS = Rdf.Triple.Set in
  let add_set = TS.of_list adds and del_set = TS.of_list dels in
  let encode_opt tr =
    match
      ( Rdf.Dictionary.find dict tr.Rdf.Triple.s,
        Rdf.Dictionary.find dict tr.Rdf.Triple.p,
        Rdf.Dictionary.find dict tr.Rdf.Triple.o )
    with
    | Some s, Some p, Some o -> Some (s, p, o)
    | _ -> None
  in
  let present tr =
    match encode_opt tr with Some t -> E.mem enc t | None -> false
  in
  (* Normalize against the live overlay: adds already present and
     deletions of absent triples drop out (a triple both added and
     deleted here nets to "present", so if it already is, both drop).
     The invariants this buys — segment adds absent below them, dels
     present, disjoint — keep the chain's live count exactly
     base + Σ(adds − dels) and let the merge kernel skip slack
     handling. *)
  let dels_n =
    TS.filter (fun t -> present t && not (TS.mem t add_set)) del_set
  in
  let adds_n = TS.filter (fun t -> not (present t)) add_set in
  if TS.is_empty adds_n && TS.is_empty dels_n then None
  else begin
    (* Interning in canonical Triple.Set order keeps new-term ids — and
       with them the segment bytes and stamp — deterministic. *)
    let add_ids =
      Array.of_list
        (List.map (Rdf.Dictionary.encode_triple dict) (TS.elements adds_n))
    in
    let del_ids =
      Array.of_list
        (List.map (fun t -> Option.get (encode_opt t)) (TS.elements dels_n))
    in
    Array.sort compare add_ids;
    Array.sort compare del_ids;
    let new_total = Rdf.Dictionary.size dict in
    let new_terms =
      Array.init (new_total - parent_terms) (fun i ->
          serialize_term (Rdf.Dictionary.term_of dict (parent_terms + i)))
    in
    let parent_stamp = -1 - E.epoch enc in
    let file = seg_path path (n_existing + 1) in
    let seg_stamp =
      write_segment file ~parent_stamp ~parent_terms ~new_terms ~adds:add_ids
        ~dels:del_ids
    in
    Some
      {
        app_file = file;
        app_adds = Array.length add_ids;
        app_dels = Array.length del_ids;
        app_new_terms = Array.length new_terms;
        app_chain_stamp = fold_stamp parent_stamp seg_stamp;
      }
  end

type compact_result = { folded : int; compact_stamp : int }

let compact path =
  if is_manifest path then
    Err.fail (Err.Invalid_input "cannot compact a shard manifest");
  let segs = discover_segments path in
  let enc = load_store path in
  let dict = E.dictionary enc in
  let acc = ref [] in
  for i = E.cardinal enc - 1 downto 0 do
    acc := Rdf.Dictionary.decode_triple dict (E.nth_spo enc i) :: !acc
  done;
  (* Term-level rebuild: encoding the decoded triple set from scratch
     assigns the same canonical ids a fresh compile of the same graph
     would, so the compacted stamp equals the monolithic one. Crash
     safety: the new base lands first (atomic rename); segments are
     unlinked after, and a crash in the window leaves segments whose
     parent stamp no longer matches — the next load fails loudly with
     [Delta_chain_broken] instead of replaying stale deltas. *)
  let fresh = E.of_graph (Rdf.Graph.of_triples !acc) in
  save fresh path;
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) segs;
  fsync_dir path;
  with_store path (fun h _ ->
      { folded = List.length segs; compact_stamp = h.h_stamp })

type shard_result = {
  sh_file : string;
  sh_slices : int;
  sh_stamp : int;
  sh_members : string list;
}

let shard ?(slices = 8) ~src out =
  if slices < 1 || slices > 4096 then
    Err.fail (Err.Invalid_input "shard slice count must be between 1 and 4096");
  let enc = load src in
  let dict = E.dictionary enc in
  let n = E.cardinal enc in
  let slice_memo = Hashtbl.create 64 in
  let slice_of p =
    match Hashtbl.find_opt slice_memo p with
    | Some k -> k
    | None ->
        let k =
          fnv_string fnv_basis (serialize_term (Rdf.Dictionary.term_of dict p))
          mod slices
        in
        Hashtbl.replace slice_memo p k;
        k
  in
  (* Partition each permutation by the predicate's slice: filtering a
     sorted sequence preserves its order, so members need no re-sort. *)
  let parts nth =
    let acc = Array.make slices [] in
    for i = n - 1 downto 0 do
      let s, p, o = nth enc i in
      let k = slice_of p in
      acc.(k) <- (s, p, o) :: acc.(k)
    done;
    Array.map Array.of_list acc
  in
  let spo = parts E.nth_spo
  and pos = parts E.nth_pos
  and osp = parts E.nth_osp in
  let heap arr = { E.fn = Array.length arr; fget = (fun i -> arr.(i)) } in
  let dir = Filename.dirname out in
  let member_file k = Printf.sprintf "%s.s%d" (Filename.basename out) k in
  let members =
    List.init slices (fun k ->
        let file = Filename.concat dir (member_file k) in
        (* Every member carries the full dictionary (ids stay global);
           only its index and statistics sections are slice-local. *)
        let m =
          E.of_views ~identity:0 ~dict ~spo:(heap spo.(k)) ~pos:(heap pos.(k))
            ~osp:(heap osp.(k)) ()
        in
        save m file;
        let stamp = with_store file (fun h _ -> h.h_stamp) in
        {
          mr_slice = k;
          mr_stamp = stamp;
          mr_triples = Array.length spo.(k);
          mr_file = member_file k;
        })
  in
  let totals =
    ( n,
      Rdf.Dictionary.size dict,
      E.distinct_subjects enc,
      E.distinct_objects enc,
      E.distinct_predicates enc )
  in
  let stamp = write_manifest out ~slices ~members ~totals in
  {
    sh_file = out;
    sh_slices = slices;
    sh_stamp = stamp;
    sh_members = List.map (fun r -> r.mr_file) members;
  }

(* ------------------------------------------------------------------ *)
(* Info                                                                *)
(* ------------------------------------------------------------------ *)

type section_info = { sec_name : string; sec_bytes : int }

type segment_info = {
  seg_file : string;
  seg_adds : int;
  seg_dels : int;
  seg_new_terms : int;
  seg_stamp : int;
  seg_chain_stamp : int;
  seg_bytes : int;
}

type member_info = {
  mem_file : string;
  mem_slice : int;
  mem_stamp : int;
  mem_triples : int;
  mem_bytes : int;
}

type chain =
  | Single
  | Chained of segment_info list
  | Sharded of { slices : int; members : member_info list }

type info = {
  version : int;
  triples : int;
  base_triples : int;
  terms : int;
  predicates : int;
  stamp : int;
  chain_stamp : int;
  identity : int;
  file_bytes : int;
  total_bytes : int;
  sections : section_info list;
  chain : chain;
}

let info ?(verify = false) path =
  if is_manifest path then begin
    let mh, records = read_manifest ~verify path in
    let dir = Filename.dirname path in
    let members =
      List.map
        (fun r ->
          let h = check_member path ~dir ~terms:mh.mh_terms ~verify r in
          {
            mem_file = r.mr_file;
            mem_slice = r.mr_slice;
            mem_stamp = r.mr_stamp;
            mem_triples = r.mr_triples;
            mem_bytes = h.h_file_bytes;
          })
        records
    in
    {
      version = format_version;
      triples = mh.mh_triples;
      base_triples = mh.mh_triples;
      terms = mh.mh_terms;
      predicates = mh.mh_distinct_p;
      stamp = mh.mh_stamp;
      chain_stamp = mh.mh_stamp;
      identity = identity_of_stamp mh.mh_stamp;
      file_bytes = mh.mh_file_bytes;
      total_bytes =
        mh.mh_file_bytes
        + List.fold_left (fun a m -> a + m.mem_bytes) 0 members;
      sections =
        [ { sec_name = "member-table"; sec_bytes = snd mh.mh_table.(0) } ];
      chain = Sharded { slices = mh.mh_slices; members };
    }
  end
  else
    let segs = List.map (read_segment ~verify) (discover_segments path) in
    with_store path (fun h fd ->
        if verify then verify_stamp path fd h;
        let live, terms, chain_stamp, rev_segs =
          List.fold_left
            (fun (live, terms, stamp, acc) sd ->
              let sg = sd.sd_header in
              if sg.sg_parent <> stamp then
                fail sd.sd_path
                  (Err.Delta_chain_broken
                     { expected_parent = stamp; found_parent = sg.sg_parent })
                  "";
              if sg.sg_parent_terms <> terms then
                fail sd.sd_path Err.Corrupt
                  "segment dictionary base disagrees with the chain";
              let stamp' = fold_stamp stamp sg.sg_stamp in
              ( live + sg.sg_adds - sg.sg_dels,
                terms + sg.sg_new_terms,
                stamp',
                {
                  seg_file = sd.sd_path;
                  seg_adds = sg.sg_adds;
                  seg_dels = sg.sg_dels;
                  seg_new_terms = sg.sg_new_terms;
                  seg_stamp = sg.sg_stamp;
                  seg_chain_stamp = stamp';
                  seg_bytes = sg.sg_file_bytes;
                }
                :: acc ))
            (h.h_triples, h.h_terms, h.h_stamp, [])
            segs
        in
        let seg_infos = List.rev rev_segs in
        {
          version = format_version;
          triples = live;
          base_triples = h.h_triples;
          terms;
          predicates = h.h_preds;
          stamp = h.h_stamp;
          chain_stamp;
          identity = identity_of_stamp chain_stamp;
          file_bytes = h.h_file_bytes;
          total_bytes =
            h.h_file_bytes
            + List.fold_left (fun a s -> a + s.seg_bytes) 0 seg_infos;
          sections =
            Array.to_list
              (Array.mapi
                 (fun k (_, len) ->
                   { sec_name = section_names.(k); sec_bytes = len })
                 h.h_table);
          chain = (match seg_infos with [] -> Single | l -> Chained l);
        })

let looks_like_store path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (String.length magic) with
          | s -> String.equal s magic || String.equal s manifest_magic
          | exception End_of_file -> false)
