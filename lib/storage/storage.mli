(** The compiled on-disk store: a versioned binary format holding a
    dictionary-encoded graph — term blob, the three sorted index
    permutations, and the planner statistics — so a cold process maps the
    file and answers queries without parsing or re-encoding anything.

    {2 File layout (format version 2)}

    The base store is a fixed 256-byte header followed by seven
    16-byte-aligned sections (see [docs/PERFORMANCE.md] for diagrams):

    - header: magic ["WDSTORE1"], format version, a byte-order mark,
      triple/term/predicate counts, the content stamp, the three
      distinct-count statistics, and a (offset, length) table of the
      sections;
    - [dict-offsets]: [n_terms + 1] ints delimiting each term's bytes in
      the blob;
    - [term-sort]: the term ids sorted by their serialized bytes, so the
      reverse lookup (term → id) is a binary search over the mapping;
    - [dict-blob]: the serialized terms, each a one-byte tag ('I' IRI,
      'V' variable) followed by the term's text;
    - [spo] / [pos] / [osp]: the raw (s, p, o) id triples of each
      permutation in its sort order, 3 ints per triple — exactly what
      {!Encoded.Encoded_graph} binary-searches;
    - [pstats]: per-predicate statistics rows (pid, triples,
      distinct subjects, distinct objects), sorted by pid.

    Format v2 keeps the base layout byte for byte and adds two multi-file
    shapes around it:

    - {b Delta segments} [<base>.d1, <base>.d2, ...] (magic
      ["WDSDELT1"]): append-only add/delete logs with a dictionary-growth
      block, each pinned to its parent by the chain stamp it extends.
      {!load} discovers the chain and merges it over the base through
      positional overlay views ({!Overlay}) — O(Δ log n) setup, no
      rewrite of the base; {!append} writes one in O(Δ).
    - {b Shard manifests} (magic ["WDSMANI1"]): a small file naming
      member stores that partition the triples by predicate hash slice,
      each member pinned by its content stamp. {!load} wraps them into a
      lazily-forced union — a predicate-bound query maps only the owning
      member.

    All integers are 64-bit little-endian words; the byte-order mark
    rejects a store read on a machine of the other endianness. Content
    stamps are FNV-1a hashes of the payload folded to 62 bits; the
    identity of a chained or sharded store folds the member stamps, so
    every distinct (base, segments) prefix and every manifest has a
    distinct stable identity.

    {2 Failure discipline}

    Every way a file can be unusable — wrong magic, a file shorter than
    the magic ({!Wdsparql_error.Truncated}, distinguished from
    {!Wdsparql_error.Bad_magic} by whether the bytes prefix a known
    magic), newer format version, corrupt structure, checksum mismatch, a
    segment whose parent stamp does not extend the chain
    ({!Wdsparql_error.Delta_chain_broken}), a gap in the segment
    numbering, or a shard member missing or disagreeing with its manifest
    ({!Wdsparql_error.Manifest_mismatch}) — raises
    {!Wdsparql_error.Store_error} with the precise fault; a corrupt store
    never surfaces as a raw [Failure], [Invalid_argument], or a crash
    inside a mapping. Validation is layered: headers, section tables and
    chain linkage eagerly at load, dictionary bytes lazily at first
    decode, and full payloads only under [~verify:true]. *)

type section_info = {
  sec_name : string;
  sec_bytes : int;  (** section length, before alignment padding *)
}

type segment_info = {
  seg_file : string;
  seg_adds : int;
  seg_dels : int;
  seg_new_terms : int;
  seg_stamp : int;  (** this segment's own payload stamp *)
  seg_chain_stamp : int;  (** the chain stamp after applying it *)
  seg_bytes : int;
}

type member_info = {
  mem_file : string;  (** as recorded in the manifest (relative) *)
  mem_slice : int;
  mem_stamp : int;
  mem_triples : int;
  mem_bytes : int;
}

type chain =
  | Single  (** a plain base store, no segments *)
  | Chained of segment_info list  (** base + delta segments, in order *)
  | Sharded of { slices : int; members : member_info list }

type info = {
  version : int;
  triples : int;  (** live triples after applying the whole chain *)
  base_triples : int;  (** triples in the base file alone *)
  terms : int;  (** dictionary size including segment growth *)
  predicates : int;  (** distinct predicates of the base ([pstats] rows) *)
  stamp : int;  (** the base (or manifest) file's own content stamp *)
  chain_stamp : int;  (** stamp folded over the whole chain; = [stamp]
                          for [Single] and [Sharded] *)
  identity : int;  (** the negative epoch loaded handles carry;
                       [-1 - chain_stamp] *)
  file_bytes : int;  (** the base (or manifest) file alone *)
  total_bytes : int;  (** including segments / members *)
  sections : section_info list;
  chain : chain;
}

val magic : string
(** The 8-byte base-store magic prefix, ["WDSTORE1"]. *)

val format_version : int

val looks_like_store : string -> bool
(** Whether the file starts with a store or manifest magic — the cheap
    sniff the CLI uses to accept a compiled store anywhere a Turtle file
    is. False on any read error. *)

val is_manifest : string -> bool
(** Whether the file starts with the shard-manifest magic. Raises
    {!Wdsparql_error.Io_error} if it cannot be opened. *)

val seg_path : string -> int -> string
(** [seg_path base k] is the path of the k-th delta segment
    ([base ^ ".d" ^ k]; segments are numbered from 1). *)

val save : Encoded.Encoded_graph.t -> string -> unit
(** [save enc path] compiles the store to [path] (atomically: written to
    a temporary sibling and renamed over, fsync'd). Statistics for every
    distinct predicate are computed now so loads never pay for them.
    Does {e not} touch delta segments of an earlier store at [path] —
    callers replacing a chained store should {!compact} instead. Raises
    {!Wdsparql_error.Io_error} on filesystem failure. *)

val load : ?verify:bool -> string -> Encoded.Encoded_graph.t
(** [load path] maps the store and wraps its sections into an encoded
    graph backed by the mapping — no parsing, no allocation proportional
    to the base data; the OS pages parts in as queries touch them.

    If delta segments exist, they are read eagerly (O(Δ)), validated
    against the chain, and merged over the base through overlay views;
    planner statistics of predicates the delta touches are recomputed
    exactly from the merged views, untouched predicates keep their
    precomputed rows. If [path] is a shard manifest, members are checked
    against their pinned stamps and wrapped into a lazy union.

    The result's {!Encoded.Encoded_graph.epoch} is the stable negative
    identity [-1 - chain_stamp], so loading the same file (plus the same
    segments) twice — even across processes — yields the same identity
    and plan caches keyed on it survive. [~verify:true] additionally
    hashes every payload against its header stamp (reads every page).

    Raises {!Wdsparql_error.Store_error} on an unusable file and
    {!Wdsparql_error.Io_error} if it cannot be opened. *)

val load_graph : ?verify:bool -> string -> Rdf.Graph.t
(** {!load}, then {!Encoded.Encoded_graph.register} the store and return
    a {!Rdf.Graph.deferred} handle carrying its identity: the handle
    drops into every API that takes a graph, the encoded evaluation path
    resolves it straight to the mapped store, and only term-level
    consumers (the naive evaluator, Turtle printing) force its lazy
    decode. *)

val info : ?verify:bool -> string -> info
(** Header, section and chain summary without touching the data sections
    (except under [~verify:true], which checksums every payload).
    Validates chain linkage and shard-member pins like {!load}, but does
    not map or decode anything. Same errors as {!load}. *)

(** {2 Incremental updates} *)

type append_result = {
  app_file : string;  (** the segment file written *)
  app_adds : int;  (** net additions recorded (after normalization) *)
  app_dels : int;  (** net deletions recorded *)
  app_new_terms : int;  (** dictionary growth *)
  app_chain_stamp : int;  (** the chain stamp after this segment *)
}

val append :
  ?adds:Rdf.Triple.t list -> ?dels:Rdf.Triple.t list -> string ->
  append_result option
(** [append ~adds ~dels path] writes the next delta segment for the
    chain at [path] — O(Δ) in the delta size, never rewriting the base.
    The delta is normalized against the live overlay first: adds already
    present and deletions of absent triples drop out (and a triple in
    both lists nets to "present"). Returns [None] — writing nothing —
    if the normalized delta is empty. New terms are interned in
    canonical order, so the segment bytes (and the resulting chain
    stamp) depend only on the store content and the delta.

    Raises {!Wdsparql_error.Invalid_input} if [path] is a shard
    manifest (append to the plain store and re-shard instead). *)

type compact_result = {
  folded : int;  (** segments folded into the base *)
  compact_stamp : int;  (** the new base's content stamp *)
}

val compact : string -> compact_result
(** Fold the whole chain at [path] into a fresh monolithic base store
    (atomically) and delete the segments. The compacted store's stamp
    equals what a fresh compile of the same triple set produces — the
    round-trip is exact. Crash safety: the new base is renamed into
    place before segments are unlinked; a crash in the window leaves
    stale segments whose parent stamp no longer matches, which the next
    {!load} rejects with {!Wdsparql_error.Delta_chain_broken} instead of
    silently replaying them. *)

type shard_result = {
  sh_file : string;
  sh_slices : int;
  sh_stamp : int;
  sh_members : string list;  (** member file basenames, slice order *)
}

val shard : ?slices:int -> src:string -> string -> shard_result
(** [shard ~src out] splits the store at [src] (chain applied) into
    [slices] member stores [out.s0 .. out.s<k-1>] partitioned by
    predicate hash, plus the manifest at [out]. Each member is a
    complete standalone store carrying the full dictionary (ids stay
    global across members). [slices] defaults to 8; raises
    {!Wdsparql_error.Invalid_input} outside [1, 4096]. *)
