(** The compiled on-disk store: a versioned binary format holding a
    dictionary-encoded graph — term blob, the three sorted index
    permutations, and the planner statistics — so a cold process maps the
    file and answers queries without parsing or re-encoding anything.

    {2 File layout (format version 1)}

    A fixed 256-byte header followed by seven 16-byte-aligned sections
    (see [docs/PERFORMANCE.md] for the diagram):

    - header: magic ["WDSTORE1"], format version, a byte-order mark,
      triple/term/predicate counts, the content stamp, the three
      distinct-count statistics, and a (offset, length) table of the
      sections;
    - [dict-offsets]: [n_terms + 1] ints delimiting each term's bytes in
      the blob;
    - [term-sort]: the term ids sorted by their serialized bytes, so the
      reverse lookup (term → id) is a binary search over the mapping;
    - [dict-blob]: the serialized terms, each a one-byte tag ('I' IRI,
      'V' variable) followed by the term's text;
    - [spo] / [pos] / [osp]: the raw (s, p, o) id triples of each
      permutation in its sort order, 3 ints per triple — exactly what
      {!Encoded.Encoded_graph} binary-searches;
    - [pstats]: per-predicate statistics rows (pid, triples,
      distinct subjects, distinct objects), sorted by pid.

    All integers are 64-bit little-endian words; the byte-order mark
    rejects a store read on a machine of the other endianness. The
    content stamp is an FNV-1a hash of the payload (everything after the
    header), folded to 62 bits: it gives the store its stable identity
    (see {!load}) and backs the optional checksum verification.

    {2 Failure discipline}

    Every way a file can be unusable — wrong magic, newer format
    version, truncation, corrupt structure, checksum mismatch — raises
    {!Wdsparql_error.Store_error} with the precise fault; a corrupt
    store never surfaces as a raw [Failure], [Invalid_argument], or a
    crash inside a mapping. Validation is layered: header and section
    table eagerly at load, dictionary bytes lazily at first decode of
    each term (keeping the load itself O(pages touched)), and the full
    payload only under [~verify:true]. *)

type info = {
  version : int;
  triples : int;
  terms : int;
  predicates : int;  (** distinct predicates (= [pstats] rows) *)
  stamp : int;  (** FNV-1a content stamp from the header *)
  identity : int;
      (** the negative epoch loaded handles carry; [-1 - stamp] *)
  file_bytes : int;
}

val magic : string
(** The 8-byte magic prefix, ["WDSTORE1"]. *)

val format_version : int

val looks_like_store : string -> bool
(** Whether the file starts with {!magic} — the cheap sniff the CLI uses
    to accept a compiled store anywhere a Turtle file is. False on any
    read error. *)

val save : Encoded.Encoded_graph.t -> string -> unit
(** [save enc path] compiles the store to [path] (atomically: written to
    a temporary sibling and renamed over). Statistics for every distinct
    predicate are computed now so loads never pay for them. Raises
    {!Wdsparql_error.Io_error} on filesystem failure. *)

val load : ?verify:bool -> string -> Encoded.Encoded_graph.t
(** [load path] maps the store and wraps its sections into an encoded
    graph backed by the mapping — no parsing, no allocation proportional
    to the data; the OS pages parts in as queries touch them. The
    result's {!Encoded.Encoded_graph.epoch} is the stable negative
    identity [-1 - stamp], so loading the same file twice (even across
    processes) yields the same identity and plan caches keyed on it
    survive. [~verify:true] additionally hashes the whole payload
    against the header's content stamp (reads every page).

    Raises {!Wdsparql_error.Store_error} on an unusable file and
    {!Wdsparql_error.Io_error} if it cannot be opened. *)

val load_graph : ?verify:bool -> string -> Rdf.Graph.t
(** {!load}, then {!Encoded.Encoded_graph.register} the store and return
    a {!Rdf.Graph.deferred} handle carrying its identity: the handle
    drops into every API that takes a graph, the encoded evaluation path
    resolves it straight to the mapped store, and only term-level
    consumers (the naive evaluator, Turtle printing) force its lazy
    decode. *)

val info : ?verify:bool -> string -> info
(** Header summary without touching the data sections (except under
    [~verify:true], which checksums the payload). Same errors as
    {!load}. *)
