open Rdf
module Budget = Resource.Budget

(* An endomorphism of (S, X) into S \ {t} for some t ∈ S witnesses that
   (S, X) is not a core; its image is a strictly smaller equivalent
   subgraph. *)
let shrinking_endomorphism ?(budget = Budget.unlimited) g =
  let s = Gtgraph.s g in
  let pre = Gtgraph.identity_pre g in
  let rec try_triples = function
    | [] -> None
    | t :: rest -> (
        Budget.tick budget;
        let target = Tgraph.remove s t in
        match Homomorphism.find ~budget ~pre ~source:s ~target () with
        | Some h -> Some h
        | None -> try_triples rest)
  in
  try_triples (Tgraph.triples s)

let image g h =
  let s = Gtgraph.s g in
  let mapped =
    List.map (Triple.map (Homomorphism.apply h)) (Tgraph.triples s)
  in
  Gtgraph.make (Tgraph.of_triples mapped) (Gtgraph.x g)

let is_core ?budget g = Option.is_none (shrinking_endomorphism ?budget g)

let core ?(budget = Budget.unlimited) g =
  Budget.with_phase budget "core" @@ fun () ->
  let rec shrink g =
    match shrinking_endomorphism ~budget g with
    | None -> g
    | Some h -> shrink (image g h)
  in
  shrink g

let ctw ?(budget = Budget.unlimited) g = Gtgraph.tw ~budget (core ~budget g)
