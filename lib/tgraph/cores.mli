(** Cores of generalised t-graphs (Section 3, Proposition 1).

    [(S', X)] is a core of [(S, X)] if it is a subgraph that is itself a
    core (no homomorphism to a proper subgraph fixing [X]) and is
    homomorphically equivalent to [(S, X)]. The core is unique up to
    renaming of variables; we return the concrete retract reached by
    repeatedly shrinking along endomorphisms. *)

val is_core : ?budget:Resource.Budget.t -> Gtgraph.t -> bool
(** No homomorphism fixing [X] into a proper subgraph. *)

val core : ?budget:Resource.Budget.t -> Gtgraph.t -> Gtgraph.t
(** The core, computed by iterated retraction: while some endomorphism
    fixing [X] misses a triple, replace [S] by its image. Worst-case
    exponential (core identification is NP-hard) — intended for
    query-sized inputs. *)

val ctw : ?budget:Resource.Budget.t -> Gtgraph.t -> int
(** [ctw(S, X) = tw(core(S, X))] — the central width measure the paper
    builds domination width from. *)
