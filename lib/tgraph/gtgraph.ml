open Rdf

type t = { s : Tgraph.t; x : Variable.Set.t }

let make s x =
  if not (Variable.Set.subset x (Tgraph.vars s)) then
    invalid_arg "Gtgraph.make: X must be a subset of vars(S)";
  { s; x }

let s t = t.s
let x t = t.x
let existential_vars t = Variable.Set.diff (Tgraph.vars t.s) t.x

let identity_pre t =
  Variable.Set.fold
    (fun v acc -> Variable.Map.add v (Term.Var v) acc)
    t.x Variable.Map.empty

let hom ?budget a b =
  if not (Variable.Set.equal a.x b.x) then
    invalid_arg "Gtgraph.hom: distinguished variable sets differ";
  Homomorphism.find ?budget ~pre:(identity_pre a) ~source:a.s ~target:b.s ()

let maps_to ?budget a b = Option.is_some (hom ?budget a b)

let hom_equivalent ?budget a b = maps_to ?budget a b && maps_to ?budget b a

let hom_to_graph t ~mu graph =
  Variable.Set.iter
    (fun v ->
      if not (Variable.Map.mem v mu) then
        invalid_arg "Gtgraph.hom_to_graph: µ does not cover X")
    t.x;
  Homomorphism.find ~pre:mu ~source:t.s ~target:(Graph.to_index graph) ()

let maps_to_graph t ~mu graph = Option.is_some (hom_to_graph t ~mu graph)

let subgraph a b = Variable.Set.equal a.x b.x && Tgraph.subset a.s b.s

let tw ?budget t =
  let gaifman, _ = Gaifman.graph t.x t.s in
  if Graphtheory.Ugraph.n gaifman = 0 || Graphtheory.Ugraph.m gaifman = 0 then 1
  else max 1 (Graphtheory.Treewidth.treewidth ?budget gaifman)

let equal a b = Tgraph.equal a.s b.s && Variable.Set.equal a.x b.x

let pp ppf t =
  Fmt.pf ppf "(%a, {%a})" Tgraph.pp t.s
    Fmt.(list ~sep:comma Variable.pp)
    (Variable.Set.elements t.x)
