(** Generalised t-graphs (Section 3): pairs [(S, X)] of a t-graph [S] and a
    set [X ⊆ vars(S)] of distinguished variables. They correspond to
    conjunctive queries whose free variables are [X]. *)

open Rdf

type t = private { s : Tgraph.t; x : Variable.Set.t }

val make : Tgraph.t -> Variable.Set.t -> t
(** Raises [Invalid_argument] unless [X ⊆ vars(S)]. *)

val s : t -> Tgraph.t
val x : t -> Variable.Set.t

val existential_vars : t -> Variable.Set.t
(** [vars(S) \ X]: the non-distinguished variables. *)

val identity_pre : t -> Homomorphism.assignment
(** The pre-assignment [x ↦ ?x] for all [x ∈ X], used so that
    homomorphisms between generalised t-graphs fix [X] pointwise. *)

val hom : ?budget:Resource.Budget.t -> t -> t -> Homomorphism.assignment option
(** [(S, X) → (S', X)]: a homomorphism fixing [X] pointwise. Raises
    [Invalid_argument] if the two [X] sets differ. *)

val maps_to : ?budget:Resource.Budget.t -> t -> t -> bool
(** [maps_to a b] iff [a → b]. *)

val hom_equivalent : ?budget:Resource.Budget.t -> t -> t -> bool
(** Homomorphic equivalence: maps both ways. *)

val hom_to_graph : t -> mu:Homomorphism.assignment -> Graph.t ->
  Homomorphism.assignment option
(** [(S, X) →µ G]: a homomorphism [h] into the RDF graph [G] with
    [h(x) = µ(x)] for [x ∈ X]. Raises [Invalid_argument] unless
    [dom(µ) ⊇ X] (extra bindings in [µ] outside [vars S] are ignored). *)

val maps_to_graph : t -> mu:Homomorphism.assignment -> Graph.t -> bool

val subgraph : t -> t -> bool
(** [(S', X)] is a subgraph of [(S, X)]: [S' ⊆ S], same [X]. *)

val tw : ?budget:Resource.Budget.t -> t -> int
(** The paper's [tw(S, X)]: treewidth of the Gaifman graph on
    [vars(S) \ X], defined as 1 when that graph has no vertices or no
    edges. *)

val equal : t -> t -> bool
val pp : t Fmt.t
