open Rdf

type assignment = Term.t Variable.Map.t

type strategy = [ `Fail_first | `Static ]

let pp_assignment ppf a =
  let binding ppf (v, t) = Fmt.pf ppf "%a ↦ %a" Variable.pp v Term.pp t in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:comma binding) (Variable.Map.bindings a)

let apply assignment = function
  | Term.Var v as term -> (
      match Variable.Map.find_opt v assignment with
      | Some value -> value
      | None -> term)
  | Term.Iri _ as term -> term

let nodes = ref 0
let search_nodes () = !nodes
let reset_stats () = nodes := 0

(* The bound value of a position under the current assignment: [Some term]
   if the position is determined (IRI or assigned variable), [None] if it is
   a wildcard. *)
let bound assignment = function
  | Term.Iri _ as t -> Some t
  | Term.Var v -> Variable.Map.find_opt v assignment

(* Try to extend [assignment] so that pattern triple [pat] maps onto target
   triple [img]. *)
let unify assignment pat img =
  let step acc (pattern_term, image_term) =
    match acc with
    | None -> None
    | Some assignment -> (
        match pattern_term with
        | Term.Iri _ ->
            if Term.equal pattern_term image_term then Some assignment else None
        | Term.Var v -> (
            match Variable.Map.find_opt v assignment with
            | Some value ->
                if Term.equal value image_term then Some assignment else None
            | None -> Some (Variable.Map.add v image_term assignment)))
  in
  List.fold_left step (Some assignment)
    (List.combine (Triple.terms pat) (Triple.terms img))

let candidates ~use_index target assignment pat =
  let lookup = if use_index then Index.matching else Index.matching_scan in
  lookup target
    ?s:(bound assignment pat.Triple.s)
    ?p:(bound assignment pat.Triple.p)
    ?o:(bound assignment pat.Triple.o)
    ()

let candidate_count target assignment pat =
  Index.match_count target
    ?s:(bound assignment pat.Triple.s)
    ?p:(bound assignment pat.Triple.p)
    ?o:(bound assignment pat.Triple.o)
    ()

(* Pick the remaining pattern with the fewest candidates (fail-first), or
   simply the head of the list (static order). *)
let pick_pattern ~strategy target assignment = function
  | [] -> None
  | first :: rest as patterns -> (
      match strategy with
      | `Static -> Some (first, rest)
      | `Fail_first ->
          let scored =
            List.map
              (fun pat -> (candidate_count target assignment pat, pat))
              patterns
          in
          let best =
            List.fold_left
              (fun (bc, bp) (c, p) -> if c < bc then (c, p) else (bc, bp))
              (List.hd scored) (List.tl scored)
          in
          let _, chosen = best in
          Some (chosen, List.filter (fun p -> p != chosen) patterns))

let fold ?(budget = Resource.Budget.unlimited) ?(strategy = `Fail_first)
    ?(use_index = true) ?(pre = Variable.Map.empty) ~source ~target ~init ~f =
  let source_vars = Tgraph.vars source in
  let pre =
    Variable.Map.filter (fun v _ -> Variable.Set.mem v source_vars) pre
  in
  let patterns = Tgraph.triples source in
  let rec go assignment remaining acc =
    match pick_pattern ~strategy target assignment remaining with
    | None -> f acc assignment
    | Some (pat, rest) ->
        incr nodes;
        Resource.Budget.tick budget;
        let images = candidates ~use_index target assignment pat in
        let rec try_images acc = function
          | [] -> (acc, `Continue)
          | img :: more -> (
              match unify assignment pat img with
              | None -> try_images acc more
              | Some assignment' -> (
                  match go assignment' rest acc with
                  | acc, `Stop -> (acc, `Stop)
                  | acc, `Continue -> try_images acc more))
        in
        try_images acc images
  in
  fst (go pre patterns init)

let find ?budget ?strategy ?use_index ?pre ~source ~target () =
  fold ?budget ?strategy ?use_index ?pre ~source ~target ~init:None
    ~f:(fun _ assignment -> (Some assignment, `Stop))

let exists ?budget ?strategy ?use_index ?pre ~source ~target () =
  Option.is_some (find ?budget ?strategy ?use_index ?pre ~source ~target ())

let count ?budget ?strategy ?use_index ?pre ~source ~target () =
  fold ?budget ?strategy ?use_index ?pre ~source ~target ~init:0 ~f:(fun n _ ->
      (n + 1, `Continue))

let all ?budget ?strategy ?use_index ?pre ?limit ~source ~target () =
  let results =
    fold ?budget ?strategy ?use_index ?pre ~source ~target ~init:[]
      ~f:(fun acc assignment ->
        let acc = assignment :: acc in
        match limit with
        | Some l when List.length acc >= l -> (acc, `Stop)
        | _ -> (acc, `Continue))
  in
  List.rev results
