(** Homomorphisms between t-graphs (Section 2.1).

    A homomorphism from a t-graph [S] to [S'] is a function [h] with domain
    [vars(S)] into the terms of [S'] such that [h(t) ∈ S'] for every triple
    pattern [t ∈ S] (IRIs are fixed pointwise). Deciding existence is
    NP-complete; this solver is join-style backtracking: it repeatedly
    processes the yet-unmatched triple pattern with the fewest matching
    target triples under the current partial assignment.

    Variables of the {e target} are never unified — they behave as frozen
    constants, which matches the paper's use of homomorphisms between
    generalised t-graphs.

    Two knobs exist purely for the ablation benchmarks (they never change
    results, only cost):
    - [strategy]: [`Fail_first] (default) picks the most constrained
      pattern next; [`Static] processes patterns in a fixed order;
    - [use_index]: when [false], candidate lookups linearly scan the
      target instead of using its hash indexes.

    [budget] is ticked once per backtracking node; the search raises
    {!Resource.Budget.Exhausted} when it trips. *)

open Rdf

type assignment = Term.t Variable.Map.t
(** A partial function from variables to terms. *)

type strategy = [ `Fail_first | `Static ]

val pp_assignment : assignment Fmt.t

val find :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy -> ?use_index:bool -> ?pre:assignment ->
  source:Tgraph.t -> target:Rdf.Index.t -> unit -> assignment option
(** [find ?pre ~source ~target ()] searches for a homomorphism from
    [source] to [target] extending [pre]. The returned assignment has
    domain [vars source] (it includes [pre]'s bindings restricted to
    [vars source]). [None] if none exists, or if [pre] itself violates a
    fully-bound triple. *)

val exists :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy -> ?use_index:bool -> ?pre:assignment ->
  source:Tgraph.t -> target:Rdf.Index.t -> unit -> bool

val count :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy -> ?use_index:bool -> ?pre:assignment ->
  source:Tgraph.t -> target:Rdf.Index.t -> unit -> int
(** Number of distinct homomorphisms. *)

val all :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy -> ?use_index:bool -> ?pre:assignment -> ?limit:int ->
  source:Tgraph.t -> target:Rdf.Index.t -> unit -> assignment list
(** All homomorphisms (up to [limit] if given). Order unspecified. *)

val fold :
  ?budget:Resource.Budget.t ->
  ?strategy:strategy -> ?use_index:bool -> ?pre:assignment ->
  source:Tgraph.t -> target:Rdf.Index.t ->
  init:'acc -> f:('acc -> assignment -> 'acc * [ `Continue | `Stop ]) ->
  'acc
(** Fold over all homomorphisms with early exit. *)

val apply : assignment -> Term.t -> Term.t
(** Apply an assignment to a term (unbound variables are left in place). *)

val search_nodes : unit -> int
(** Number of backtracking nodes expanded since the last {!reset_stats};
    instrumentation for the benchmark harness. *)

val reset_stats : unit -> unit
