module Budget = Resource.Budget

let child_extends ?budget tree graph mu n =
  let source = Pattern_tree.pat tree n in
  let pre = Sparql.Mapping.to_assignment mu in
  let enc = Encoded.Encoded_graph.of_graph_cached graph in
  Encoded.Encoded_hom.exists ?budget ~pre (Encoded.Encoded_hom.compile source enc)

let check_tree ?(budget = Budget.unlimited) tree graph mu =
  Budget.with_phase budget "naive-eval" @@ fun () ->
  match Subtree.matching tree graph mu with
  | None -> false
  | Some subtree ->
      not
        (List.exists
           (child_extends ~budget tree graph mu)
           (Subtree.children subtree))

let check ?budget forest graph mu =
  List.exists (fun tree -> check_tree ?budget tree graph mu) forest

let solutions_tree ?(budget = Budget.unlimited) tree graph =
  Budget.with_phase budget "naive-eval" @@ fun () ->
  let enc = Encoded.Encoded_graph.of_graph_cached graph in
  List.fold_left
    (fun acc subtree ->
      let source = Subtree.pat subtree in
      let homs = Encoded.Encoded_hom.all ~budget (Encoded.Encoded_hom.compile source enc) in
      List.fold_left
        (fun acc h ->
          match Sparql.Mapping.of_assignment h with
          | None -> acc
          | Some mu ->
              let maximal =
                not
                  (List.exists
                     (child_extends ~budget tree graph mu)
                     (Subtree.children subtree))
              in
              if maximal then begin
                if not (Sparql.Mapping.Set.mem mu acc) then Budget.solution budget;
                Sparql.Mapping.Set.add mu acc
              end
              else acc)
        acc homs)
    Sparql.Mapping.Set.empty
    (Subtree.all ~budget tree)

let solutions ?budget forest graph =
  List.fold_left
    (fun acc tree ->
      Sparql.Mapping.Set.union acc (solutions_tree ?budget tree graph))
    Sparql.Mapping.Set.empty forest
