(** Evaluation of wdPTs and wdPFs via the characterisation of Lemma 1:
    [µ ∈ ⟦T⟧G] iff there is a subtree [T'] such that [µ] is a homomorphism
    from [pat(T')] to [G] and no child of [T'] admits a homomorphism
    compatible with [µ].

    [check] is the "natural algorithm" of Sections 3–3.1: it performs
    NP-hard homomorphism tests and is therefore exponential in the query in
    the worst case (this is the paper's baseline; the polynomial relaxation
    lives in [Wd_core.Pebble_eval]). [solutions] enumerates the full answer
    set.

    All functions thread [budget] into the underlying homomorphism
    searches (phase ["naive-eval"]); [solutions] additionally accounts
    each distinct answer against the budget's solution cap. *)

open Rdf

val check_tree :
  ?budget:Resource.Budget.t -> Pattern_tree.t -> Graph.t -> Sparql.Mapping.t ->
  bool
(** [µ ∈ ⟦T⟧G]. *)

val check :
  ?budget:Resource.Budget.t -> Pattern_forest.t -> Graph.t -> Sparql.Mapping.t ->
  bool
(** [µ ∈ ⟦F⟧G = ⟦T1⟧G ∪ … ∪ ⟦Tm⟧G]. *)

val solutions_tree :
  ?budget:Resource.Budget.t -> Pattern_tree.t -> Graph.t -> Sparql.Mapping.Set.t
(** All of [⟦T⟧G], by enumerating subtrees, their homomorphisms, and
    filtering non-maximal ones. *)

val solutions :
  ?budget:Resource.Budget.t -> Pattern_forest.t -> Graph.t -> Sparql.Mapping.Set.t

val child_extends :
  ?budget:Resource.Budget.t -> Pattern_tree.t -> Graph.t -> Sparql.Mapping.t ->
  Pattern_tree.node -> bool
(** Is there a homomorphism from [pat(n)] to [G] compatible with [µ]? The
    inner test both evaluators share; exposed for the pebble variant and
    for tests. *)
