open Rdf
open Tgraphs
module NSet = Set.Make (Int)

type t = { tree : Pattern_tree.t; nodes : NSet.t }

let of_nodes tree node_list =
  let nodes = NSet.of_list node_list in
  if not (NSet.mem Pattern_tree.root nodes) then
    invalid_arg "Subtree.of_nodes: must contain the root";
  NSet.iter
    (fun n ->
      match Pattern_tree.parent tree n with
      | None -> ()
      | Some p ->
          if not (NSet.mem p nodes) then
            invalid_arg "Subtree.of_nodes: not closed under parents")
    nodes;
  { tree; nodes }

let root_only tree = { tree; nodes = NSet.singleton Pattern_tree.root }
let full tree = { tree; nodes = NSet.of_list (Pattern_tree.nodes tree) }

let tree t = t.tree
let members t = NSet.elements t.nodes
let mem t n = NSet.mem n t.nodes

let pat t =
  NSet.fold
    (fun n acc -> Tgraph.union acc (Pattern_tree.pat t.tree n))
    t.nodes Tgraph.empty

let vars t = Tgraph.vars (pat t)

let children t =
  List.filter
    (fun n ->
      (not (NSet.mem n t.nodes))
      && match Pattern_tree.parent t.tree n with
         | Some p -> NSet.mem p t.nodes
         | None -> false)
    (Pattern_tree.nodes t.tree)

let add_child t n =
  if List.mem n (children t) then { t with nodes = NSet.add n t.nodes }
  else invalid_arg "Subtree.add_child: not a child of the subtree"

let all ?(budget = Resource.Budget.unlimited) tree =
  (* Node ids are topological, so processing them in order means a node's
     parent has already been decided. The lattice has up to 2^nodes
     members, so the expansion itself is budgeted. *)
  let rec go acc = function
    | [] -> acc
    | n :: rest ->
        let acc' =
          if n = Pattern_tree.root then List.map (fun s -> NSet.add n s) acc
          else
            List.concat_map
              (fun s ->
                Resource.Budget.tick budget;
                if NSet.mem (Option.get (Pattern_tree.parent tree n)) s then
                  [ s; NSet.add n s ]
                else [ s ])
              acc
        in
        go acc' rest
  in
  go [ NSet.empty ] (Pattern_tree.nodes tree)
  |> List.map (fun nodes -> { tree; nodes })

(* Maximal growth from the root, adding children accepted by [admit]. *)
let grow tree admit =
  if not (admit Pattern_tree.root) then None
  else begin
    let current = ref (root_only tree) in
    let continue_ = ref true in
    while !continue_ do
      match List.find_opt admit (children !current) with
      | Some n ->
          current := add_child !current n
      | None -> continue_ := false
    done;
    Some !current
  end

let with_vars tree target_vars =
  let admit n =
    Variable.Set.subset (Pattern_tree.vars_of_node tree n) target_vars
  in
  match grow tree admit with
  | None -> None
  | Some t -> if Variable.Set.equal (vars t) target_vars then Some t else None

let matching tree graph mu =
  let dom = Sparql.Mapping.dom mu in
  let admit n =
    Variable.Set.subset (Pattern_tree.vars_of_node tree n) dom
    && List.for_all
         (fun triple -> Graph.mem graph (Sparql.Mapping.apply mu triple))
         (Tgraph.triples (Pattern_tree.pat tree n))
  in
  match grow tree admit with
  | None -> None
  | Some t -> if Variable.Set.equal (vars t) dom then Some t else None

let equal a b = Pattern_tree.equal a.tree b.tree && NSet.equal a.nodes b.nodes

let pp ppf t =
  Fmt.pf ppf "subtree{%a}" Fmt.(list ~sep:comma int) (members t)
