(** Subtrees of a wdPT: connected, root-containing subsets of nodes
    (Section 2.1). All subtrees contain the original root. *)

open Rdf
open Tgraphs

type t

val of_nodes : Pattern_tree.t -> Pattern_tree.node list -> t
(** Raises [Invalid_argument] unless the set contains the root and is
    closed under parents. *)

val root_only : Pattern_tree.t -> t
val full : Pattern_tree.t -> t

val tree : t -> Pattern_tree.t
val members : t -> Pattern_tree.node list
(** Sorted ascending. *)

val mem : t -> Pattern_tree.node -> bool

val pat : t -> Tgraph.t
(** [pat(T')]: union of member labels. *)

val vars : t -> Variable.Set.t

val children : t -> Pattern_tree.node list
(** The children of the subtree: nodes outside it whose parent is in it. *)

val add_child : t -> Pattern_tree.node -> t
(** Raises [Invalid_argument] if the node is not a child of the subtree. *)

val all : ?budget:Resource.Budget.t -> Pattern_tree.t -> t list
(** Every subtree (exponentially many — query-sized trees only). *)

val with_vars : Pattern_tree.t -> Variable.Set.t -> t option
(** The unique subtree [T'] with [vars(T') = V], when it exists. Found by
    maximal growth: NR normal form guarantees uniqueness. *)

val matching : Pattern_tree.t -> Graph.t -> Sparql.Mapping.t -> t option
(** [T^µ]: the unique subtree such that [µ] is a homomorphism from
    [pat(T^µ)] to [G] with [vars(T^µ) = dom(µ)] — the subtree the
    evaluation algorithms of Section 3.1 search for. *)

val equal : t -> t -> bool
val pp : t Fmt.t
