(* The static analyzer (lib/analysis) and the codebase discipline lint
   (tools/lint):

   - the designedness verdict agrees with Sparql.Well_designed.check and
     with Wdpt.Translate on generated patterns (well-designed families
     and an unconstrained generator that also produces violations);
   - diagnostics round-trip through the JSON encoding, byte-exact;
   - spans point where they should on hand-written fixtures;
   - every lint rule fires on its minimal triggering query;
   - static width estimates bound the exact domination width and feed
     Engine.plan as hints;
   - the budget-discipline lint is clean on a compliant tree and fails,
     with file:line, on seeded violations. *)

open Rdf
module A = Sparql.Algebra
module D = Analysis.Designedness

let check = Alcotest.check

let qcheck ?(count = 220) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 1_000_000)

let parse src =
  match Sparql.Parser.parse_spanned src with
  | Ok r -> r
  | Error msg -> Alcotest.failf "parse: %s" msg

let analyze ?graph src =
  match Analysis.Analyzer.of_source ?graph src with
  | Ok r -> r
  | Error e -> Alcotest.failf "analyze: %a" Wdsparql_error.pp e

let rules report =
  List.map (fun d -> d.Analysis.Diagnostic.rule) report.Analysis.Analyzer.diagnostics

let has_rule rule report = List.mem rule (rules report)

(* ------------------------------------------------------------------ *)
(* Verdict agreement (satellite: property test)                        *)
(* ------------------------------------------------------------------ *)

(* Unconstrained random patterns: small variable pool and free OPT
   nesting, so well-designedness violations are frequent. *)
let random_pattern seed =
  let st = Random.State.make [| seed |] in
  let term_var () = Term.var (Printf.sprintf "v%d" (Random.State.int st 5)) in
  let triple () =
    A.triple
      (Triple.make (term_var ())
         (Term.iri (Printf.sprintf "p%d" (Random.State.int st 2)))
         (term_var ()))
  in
  let rec go depth =
    if depth = 0 then triple ()
    else
      match Random.State.int st 6 with
      | 0 | 1 -> triple ()
      | 2 -> A.and_ (go (depth - 1)) (go (depth - 1))
      | 3 | 4 -> A.opt (go (depth - 1)) (go (depth - 1))
      | _ -> A.union (go (depth - 1)) (go (depth - 1))
  in
  go (2 + Random.State.int st 2)

let translates p =
  match Wdpt.Translate.forest_of_algebra p with
  | (_ : Wdpt.Pattern_tree.t list) -> true
  | exception Wdpt.Translate.Not_well_designed _ -> false

let agreement p =
  let verdict = (D.analyze p).D.verdict in
  let checked = Result.is_ok (Sparql.Well_designed.check p) in
  (verdict = D.Well_designed) = checked
  && (not (A.is_core p)) || checked = translates p

let verdict_agreement_random =
  qcheck "analyzer verdict = Well_designed iff check = Ok (random)" seed_arb
    (fun seed -> agreement (random_pattern seed))

let verdict_agreement_wd =
  qcheck "generated wd families are verdict Well_designed" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed seed in
      (D.analyze p).D.verdict = D.Well_designed && agreement p)

let weakly_is_not_well =
  qcheck "weak/ill verdicts imply check = Error" seed_arb (fun seed ->
      let p = random_pattern seed in
      match (D.analyze p).D.verdict with
      | D.Well_designed -> true
      | D.Weakly_well_designed | D.Ill_designed ->
          Result.is_error (Sparql.Well_designed.check p))

(* The translate witness (satellite: Translate returns the violation) *)
let test_translate_witness () =
  let p, _ = parse "{ ?a p:p ?o OPTIONAL { ?a p:q ?y } ?b p:r ?y }" in
  match Wdpt.Translate.forest_of_algebra p with
  | _ -> Alcotest.fail "expected Not_well_designed"
  | exception Wdpt.Translate.Not_well_designed
      (Sparql.Well_designed.Unsafe_variable { variable; outside; _ }) ->
      check Alcotest.string "violating variable" "y"
        (Fmt.str "%a" Variable.pp variable |> fun s ->
         String.sub s 1 (String.length s - 1));
      check Alcotest.bool "witness names the re-occurrence" true
        (Variable.Set.mem variable (A.vars outside))
  | exception Wdpt.Translate.Not_well_designed v ->
      Alcotest.failf "unexpected violation %a" Sparql.Well_designed.pp_violation v

(* ------------------------------------------------------------------ *)
(* Diagnostic JSON round-trip (satellite: property test)               *)
(* ------------------------------------------------------------------ *)

let diagnostic_gen =
  let open QCheck.Gen in
  let nasty_string =
    string_size ~gen:(oneof [ char_range 'a' 'z'; oneofl [ '"'; '\\'; '\n'; '\t'; '?'; ':'; '\001' ] ])
      (int_bound 14)
  in
  let pos = map2 (fun line col -> { Sparql.Span.line; col }) (int_range 1 99) (int_range 0 99) in
  let span =
    oneof
      [
        return Sparql.Span.dummy;
        map2 (fun start stop -> Sparql.Span.make ~start ~stop) pos pos;
      ]
  in
  let related =
    map2 (fun where note -> { Analysis.Diagnostic.where; note }) span nasty_string
  in
  let severity = oneofl Analysis.Diagnostic.[ Error; Warning; Info ] in
  map
    (fun (rule, severity, span, message, related, heuristic) ->
      Analysis.Diagnostic.make ~rule ~severity ~span ~related ~heuristic message)
    (tup6 nasty_string severity span nasty_string
       (list_size (int_bound 3) related)
       bool)

let diagnostic_arb =
  QCheck.make
    ~print:(fun d -> Analysis.Json.to_string (Analysis.Diagnostic.to_json d))
    diagnostic_gen

let json_roundtrip =
  qcheck ~count:300 "diagnostic JSON round-trips byte-exactly" diagnostic_arb
    (fun d ->
      let text = Analysis.Json.to_string (Analysis.Diagnostic.to_json d) in
      match Analysis.Json.of_string text with
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e
      | Ok j -> (
          match Analysis.Diagnostic.of_json j with
          | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e
          | Ok d' -> d = d'))

let test_report_json () =
  let report = analyze "{ { ?a p:p ?o OPTIONAL { ?a p:q ?y } } { ?b p:r ?o2 OPTIONAL { ?b p:s ?y } } }" in
  let text = Analysis.Json.to_string (Analysis.Analyzer.to_json report) in
  match Analysis.Json.of_string text with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok j ->
      let member k = Analysis.Json.member k j in
      check Alcotest.(option string) "verdict" (Some "ill-designed")
        (Option.bind (member "verdict") Analysis.Json.to_str);
      let diags =
        Option.bind (member "diagnostics") Analysis.Json.to_list
        |> Option.value ~default:[]
      in
      check Alcotest.bool "every diagnostic decodes" true
        (List.for_all
           (fun d -> Result.is_ok (Analysis.Diagnostic.of_json d))
           diags)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_spans () =
  let src = "{ ?x p:knows ?y .\n  OPTIONAL { ?y p:email ?m } }" in
  let p, spans = parse src in
  (match p with
  | A.Opt (left, right) ->
      let opt_span = Sparql.Spans.find_or_dummy spans p in
      check Alcotest.int "opt starts on line 1" 1 opt_span.Sparql.Span.start.line;
      check Alcotest.int "opt ends on line 2" 2 opt_span.Sparql.Span.stop.line;
      let left_span = Sparql.Spans.find_or_dummy spans left in
      check Alcotest.int "left arm is the line-1 triple" 1
        left_span.Sparql.Span.stop.line;
      let right_span = Sparql.Spans.find_or_dummy spans right in
      check Alcotest.int "right arm sits on line 2" 2
        right_span.Sparql.Span.start.line
  | _ -> Alcotest.fail "expected an OPT at top level");
  (* ill-designed witness spans: the two OPT subpatterns are reported *)
  let report =
    analyze
      "{ { ?a p:p ?o OPTIONAL { ?a p:q ?y } }\n\
      \  { ?b p:r ?o2 OPTIONAL { ?b p:s ?y } } }"
  in
  match
    List.find_opt
      (fun d -> d.Analysis.Diagnostic.rule = "wd-unsafe-variable")
      report.Analysis.Analyzer.diagnostics
  with
  | None -> Alcotest.fail "expected a wd-unsafe-variable finding"
  | Some d ->
      check Alcotest.bool "primary span is real" false
        (Sparql.Span.is_dummy d.Analysis.Diagnostic.span);
      let second_opt =
        List.exists
          (fun r ->
            (not (Sparql.Span.is_dummy r.Analysis.Diagnostic.where))
            && r.Analysis.Diagnostic.where.Sparql.Span.start.line = 2)
          d.Analysis.Diagnostic.related
      in
      check Alcotest.bool "a related span points at the second OPT (line 2)"
        true second_opt

let test_node_spans () =
  let src = "{ ?x p:knows ?y .\n  OPTIONAL { ?y p:email ?m } }" in
  let p, spans = parse src in
  let tree = Wdpt.Translate.tree_of_algebra p in
  let node_spans = Analysis.Analyzer.node_spans ~spans tree in
  check Alcotest.int "one span per node" (Wdpt.Pattern_tree.size tree)
    (List.length node_spans);
  List.iter
    (fun (n, sp) ->
      check Alcotest.bool (Fmt.str "node %d span is real" n) false
        (Sparql.Span.is_dummy sp))
    node_spans

(* ------------------------------------------------------------------ *)
(* Lint rules: each fires on its minimal query                         *)
(* ------------------------------------------------------------------ *)

let test_lint_triggers () =
  let fires rule src =
    check Alcotest.bool (rule ^ " fires") true (has_rule rule (analyze src))
  in
  fires "projected-variable-unused" "SELECT ?x ?ghost WHERE { ?x p:p ?y }";
  fires "possibly-unbound-variable"
    "SELECT ?x ?m WHERE { ?x p:p ?y OPTIONAL { ?y p:q ?m } }";
  fires "dead-optional" "{ ?x p:p ?y OPTIONAL { ?x p:q ?y } }";
  fires "union-normal-form"
    "{ ?x p:p ?y OPTIONAL { { ?x p:q ?z } UNION { ?x p:r ?z } } }";
  fires "duplicate-triple" "{ ?x p:p ?y . ?x p:p ?y }";
  fires "wd-unsafe-variable" "{ ?a p:p ?o OPTIONAL { ?a p:q ?y } ?b p:r ?y }";
  fires "wwd-optional-reuse"
    "{ { ?x p:a ?y OPTIONAL { ?y p:b ?z } } OPTIONAL { ?z p:c ?w } }";
  fires "wd-unsafe-filter" "{ ?x p:p ?y FILTER (?z = ?y) }";
  (* the parser only accepts top-level SELECT, so build the nested one *)
  let nested_select =
    A.and_
      (A.triple (Triple.make (Term.var "x") (Term.iri "p") (Term.var "y")))
      (A.select
         (Variable.Set.singleton (Variable.of_string "y"))
         (A.triple (Triple.make (Term.var "y") (Term.iri "q") (Term.var "z"))))
  in
  let report =
    Analysis.Analyzer.analyze ~spans:Sparql.Spans.empty nested_select
  in
  check Alcotest.bool "wd-nested-select fires" true
    (List.exists
       (fun d -> d.Analysis.Diagnostic.rule = "wd-nested-select")
       report.Analysis.Analyzer.diagnostics);
  (* clean corpus queries stay clean *)
  let clean = analyze "{ ?who p:knows ?friend OPTIONAL { ?friend p:email ?m } }" in
  check (Alcotest.list Alcotest.string) "clean query has no findings" []
    (rules clean);
  check Alcotest.bool "has_findings mirrors diagnostics" false
    (Analysis.Analyzer.has_findings clean)

let test_unsatisfiable_triple () =
  (* exact reading: the decision procedure needs no store *)
  let storeless = analyze "{ ?x p:p ?y FILTER (?x != ?x) }" in
  check Alcotest.bool "exact unsat fires without a store" true
    (has_rule "unsatisfiable-triple" storeless);
  let exact =
    List.find
      (fun d -> d.Analysis.Diagnostic.rule = "unsatisfiable-triple")
      storeless.Analysis.Analyzer.diagnostics
  in
  check Alcotest.bool "the exact finding is not heuristic" false
    exact.Analysis.Diagnostic.heuristic;
  (* a satisfiable query over an absent predicate is a vocabulary
     mismatch of this store, not unsatisfiability *)
  let graph = Testutil.graph_of_seed 7 in
  (* generator predicates are p:q0/p:q1: p:nosuch never occurs *)
  let report = analyze ~graph "{ ?x p:nosuch ?y }" in
  check Alcotest.bool "satisfiable query is not called unsatisfiable" false
    (has_rule "unsatisfiable-triple" report);
  check Alcotest.bool "vocabulary-mismatch fires with a store" true
    (has_rule "vocabulary-mismatch" report);
  check Alcotest.bool "vocabulary-mismatch needs a store" false
    (has_rule "vocabulary-mismatch" (analyze "{ ?x p:nosuch ?y }"));
  (* an undecided pattern plus a store: the old vocabulary check runs as
     the fallback, and its findings say so *)
  let undecided =
    "{ { ?x p:nosuch ?y OPTIONAL { ?x p:nosuch ?z } } FILTER (!BOUND(?z)) }"
  in
  (match
     Analysis.Satisfiability.decide_quietly
       ~fuel:Analysis.Lints.satisfiability_fuel
       (fst (parse undecided))
   with
  | Analysis.Satisfiability.Unknown _ -> ()
  | v ->
      Alcotest.failf "expected an undecided verdict, got %s"
        (Analysis.Satisfiability.verdict_name v));
  match
    List.find_opt
      (fun d -> d.Analysis.Diagnostic.rule = "unsatisfiable-triple")
      (analyze ~graph undecided).Analysis.Analyzer.diagnostics
  with
  | None -> Alcotest.fail "expected the labeled heuristic fallback"
  | Some d ->
      check Alcotest.bool "the fallback finding is heuristic" true
        d.Analysis.Diagnostic.heuristic;
      check Alcotest.bool "its JSON carries the heuristic flag" true
        (Astring.String.is_infix ~affix:"\"heuristic\""
           (Analysis.Json.to_string (Analysis.Diagnostic.to_json d)))

(* ------------------------------------------------------------------ *)
(* Satisfiability, canonical forms, pruning (tentpole)                 *)
(* ------------------------------------------------------------------ *)

module Sat = Analysis.Satisfiability
module Canon = Analysis.Canonical
module Prune = Analysis.Prune
module C = Sparql.Condition

let decide src = Sat.decide_quietly ~fuel:100_000 (fst (parse src))

let test_satisfiability_cases () =
  (match decide "{ ?x p:p ?y }" with
  | Sat.Sat { witness } ->
      check Alcotest.bool "the witness graph verifies" false
        (Sparql.Mapping.Set.is_empty
           (Sparql.Eval.eval (fst (parse "{ ?x p:p ?y }")) witness))
  | v -> Alcotest.failf "expected sat, got %s" (Sat.verdict_name v));
  let unsat name src =
    match decide src with
    | Sat.Unsat -> ()
    | v -> Alcotest.failf "%s: expected unsat, got %s" name (Sat.verdict_name v)
  in
  unsat "x != x" "{ ?x p:p ?y FILTER (?x != ?x) }";
  unsat "!BOUND on a mandatory variable" "{ ?x p:p ?y FILTER (!BOUND(?x)) }";
  unsat "two distinct constants" "{ ?x p:p ?y FILTER (?x = p:a && ?x = p:b) }";
  unsat "equality with its own negation"
    "{ ?x p:p ?y FILTER (?x = ?y && ?y != ?x) }";
  unsat "contradiction inside a union branch, both branches"
    "{ { ?x p:p ?y FILTER (?x != ?x) } UNION { ?x p:q ?y FILTER (?y != ?y) } }";
  (* a contradictory OPT arm is skippable: the pattern stays satisfiable *)
  (match decide "{ ?x p:p ?y OPTIONAL { ?x p:p ?z FILTER (?z != ?z) } }" with
  | Sat.Sat _ -> ()
  | v ->
      Alcotest.failf "skippable OPT arm: expected sat, got %s"
        (Sat.verdict_name v));
  (* the OPT re-match trap: the skip-scenario is consistent but every
     graph re-matches the arm — the verdict must never be Sat *)
  match
    decide "{ { ?x p:p ?y OPTIONAL { ?x p:p ?z } } FILTER (!BOUND(?z)) }"
  with
  | Sat.Sat _ -> Alcotest.fail "re-match trap misreported sat"
  | Sat.Unsat | Sat.Unknown _ -> ()

(* Random patterns over the generator vocabulary (predicates p:q0/p:q1,
   nodes n:0..n:5) with FILTERs mixing BOUND, equality, negation and
   connectives — satisfiable ones frequently have solutions on
   [Testutil.graph_of_seed] stores, so the differential test bites. *)
let random_filtered_pattern seed =
  let st = Random.State.make [| seed; 4242 |] in
  let var () = Printf.sprintf "v%d" (Random.State.int st 5) in
  let const () = Term.iri (Printf.sprintf "n:%d" (Random.State.int st 6)) in
  let term () =
    if Random.State.int st 4 = 0 then const () else Term.var (var ())
  in
  let triple () =
    A.triple
      (Triple.make (term ())
         (Term.iri (Printf.sprintf "p:q%d" (Random.State.int st 2)))
         (term ()))
  in
  let rec cond depth =
    if depth = 0 then
      match Random.State.int st 3 with
      | 0 -> C.bound (var ())
      | 1 -> C.eq (Term.var (var ())) (term ())
      | _ -> C.neq (Term.var (var ())) (term ())
    else
      match Random.State.int st 4 with
      | 0 -> C.Not (cond (depth - 1))
      | 1 -> C.And (cond (depth - 1), cond (depth - 1))
      | 2 -> C.Or (cond (depth - 1), cond (depth - 1))
      | _ -> cond 0
  in
  let rec go depth =
    if depth = 0 then triple ()
    else
      match Random.State.int st 8 with
      | 0 | 1 -> triple ()
      | 2 | 3 -> A.and_ (go (depth - 1)) (go (depth - 1))
      | 4 -> A.opt (go (depth - 1)) (go (depth - 1))
      | 5 -> A.union (go (depth - 1)) (go (depth - 1))
      | _ -> A.filter (go (depth - 1)) (cond (1 + Random.State.int st 2))
  in
  go (2 + Random.State.int st 2)

let satisfiability_differential =
  qcheck ~count:320 "verdicts agree with the reference evaluator" seed_arb
    (fun seed ->
      let p = random_filtered_pattern seed in
      match Sat.decide_quietly ~fuel:100_000 p with
      | Sat.Unsat ->
          (* unsat is a universal claim: no store may yield a solution *)
          List.for_all
            (fun i ->
              Sparql.Mapping.Set.is_empty
                (Sparql.Eval.eval p (Testutil.graph_of_seed (seed + i))))
            [ 0; 1; 2 ]
      | Sat.Sat { witness } ->
          not (Sparql.Mapping.Set.is_empty (Sparql.Eval.eval p witness))
      | Sat.Unknown _ -> true)

let prune_soundness =
  qcheck ~count:300 "pruning never changes answers" seed_arb (fun seed ->
      let p = random_filtered_pattern seed in
      let pruned = Prune.run p in
      List.for_all
        (fun i ->
          let g = Testutil.graph_of_seed (seed + i) in
          let expected = Sparql.Eval.eval p g in
          let actual =
            match pruned.Prune.outcome with
            | Prune.Empty -> Sparql.Mapping.Set.empty
            | Prune.Pattern residual -> Sparql.Eval.eval residual g
          in
          Sparql.Mapping.Set.equal expected actual)
        [ 0; 1 ])

let test_prune_rules () =
  let run src = Prune.run (fst (parse src)) in
  let rules r = List.map (fun d -> d.Analysis.Diagnostic.rule) r.Prune.rewrites in
  (* contradictory whole pattern: Empty, no evaluation needed *)
  let r = run "{ ?x p:p ?y FILTER (?x != ?x) }" in
  check Alcotest.bool "filter-false prunes to Empty" true
    (r.Prune.outcome = Prune.Empty && r.Prune.changed);
  check Alcotest.bool "filter-false diagnostic emitted" true
    (List.mem "prune-filter-false" (rules r));
  (* contradictory OPT arm: the left side survives alone *)
  let r = run "{ ?x p:p ?y OPTIONAL { ?x p:q ?z FILTER (?z != ?z) } }" in
  (match r.Prune.outcome with
  | Prune.Pattern residual ->
      check Testutil.algebra "unsat OPT arm dropped"
        (fst (parse "{ ?x p:p ?y }"))
        residual
  | Prune.Empty -> Alcotest.fail "left side must survive");
  check Alcotest.bool "unsat-optional diagnostic emitted" true
    (List.mem "prune-unsat-optional" (rules r));
  (* contradictory UNION branch: the other branch survives *)
  let r =
    run "{ { ?x p:p ?y FILTER (?x != ?x) } UNION { ?x p:q ?y } }"
  in
  (match r.Prune.outcome with
  | Prune.Pattern residual ->
      check Testutil.algebra "unsat UNION branch dropped"
        (fst (parse "{ ?x p:q ?y }"))
        residual
  | Prune.Empty -> Alcotest.fail "the live branch must survive");
  (* duplicate triple in one conjunction scope *)
  let r = run "{ ?x p:p ?y . ?x p:p ?y }" in
  (match r.Prune.outcome with
  | Prune.Pattern residual ->
      check Testutil.algebra "duplicate conjunct dropped"
        (fst (parse "{ ?x p:p ?y }"))
        residual
  | Prune.Empty -> Alcotest.fail "deduplication must keep one copy");
  check Alcotest.bool "duplicate-triple diagnostic emitted" true
    (List.mem "prune-duplicate-triple" (rules r));
  (* a clean query is returned physically intact, no diagnostics *)
  let p = fst (parse "{ ?x p:p ?y OPTIONAL { ?y p:q ?z } }") in
  let r = Prune.run p in
  (match r.Prune.outcome with
  | Prune.Pattern residual ->
      check Alcotest.bool "clean pattern physically unchanged" true
        (residual == p)
  | Prune.Empty -> Alcotest.fail "clean pattern pruned away");
  check Alcotest.bool "no rewrites on a clean pattern" false r.Prune.changed

let canonical_key src = (Canon.of_pattern (fst (parse src))).Canon.key

let test_canonical_keys () =
  let same name a b =
    check Alcotest.string name (canonical_key a) (canonical_key b)
  in
  same "conjunct order" "{ ?a p:p ?b . ?c p:q ?d }"
    "{ ?c p:q ?d . ?a p:p ?b }";
  same "alpha renaming" "{ ?x p:p ?y OPTIONAL { ?y p:q ?z } }"
    "{ ?s p:p ?o OPTIONAL { ?o p:q ?m } }";
  same "union branch order" "{ { ?x p:p ?y } UNION { ?x p:q ?y } }"
    "{ { ?a p:q ?b } UNION { ?a p:p ?b } }";
  same "equality orientation" "{ ?x p:p ?y FILTER (?x = ?y) }"
    "{ ?x p:p ?y FILTER (?y = ?x) }";
  same "condition order" "{ ?x p:p ?y FILTER (BOUND(?x) && BOUND(?y)) }"
    "{ ?x p:p ?y FILTER (BOUND(?y) && BOUND(?x)) }";
  check Alcotest.bool "distinct queries keep distinct keys" false
    (String.equal (canonical_key "{ ?x p:p ?y }")
       (canonical_key "{ ?x p:q ?y }"));
  (* OPT is not commutative: swapped arms must not collide *)
  check Alcotest.bool "OPT arms are not interchangeable" false
    (String.equal
       (canonical_key "{ ?x p:p ?y OPTIONAL { ?x p:q ?z } }")
       (canonical_key "{ ?x p:q ?z OPTIONAL { ?x p:p ?y } }"))

let canonical_rename_back =
  qcheck ~count:200 "canonical eval + rename_back = original eval" seed_arb
    (fun seed ->
      let p = Testutil.wd_pattern_of_seed seed in
      let canon = Canon.of_pattern p in
      let g = Testutil.graph_of_seed (seed + 1) in
      let renamed =
        Sparql.Mapping.Set.fold
          (fun mu acc ->
            Sparql.Mapping.Set.add (Canon.rename_back canon mu) acc)
          (Sparql.Eval.eval canon.Canon.pattern g)
          Sparql.Mapping.Set.empty
      in
      Sparql.Mapping.Set.equal renamed (Sparql.Eval.eval p g))

let canonical_key_stable_under_renaming =
  qcheck ~count:200 "generated patterns: key survives variable renaming"
    seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed seed in
      let rename t =
        match t with
        | Term.Var v -> Term.var ("fresh_" ^ Variable.to_string v)
        | t -> t
      in
      let rec map_pattern = function
        | A.Triple t ->
            A.triple
              (Triple.make (rename t.Triple.s) t.Triple.p (rename t.Triple.o))
        | A.And (a, b) -> A.and_ (map_pattern a) (map_pattern b)
        | A.Opt (a, b) -> A.opt (map_pattern a) (map_pattern b)
        | A.Union (a, b) -> A.union (map_pattern a) (map_pattern b)
        | A.Filter (q, c) -> A.filter (map_pattern q) c
        | A.Select (vs, q) -> A.select vs (map_pattern q)
      in
      (* wd generator families are FILTER/SELECT-free, so the condition
         and projection arms above never rename inconsistently *)
      String.equal (Canon.of_pattern p).Canon.key
        (Canon.of_pattern (map_pattern p)).Canon.key)

(* ------------------------------------------------------------------ *)
(* Width estimates and Engine.plan hints                               *)
(* ------------------------------------------------------------------ *)

let width_bounds_sound =
  qcheck ~count:120 "static dw_upper bounds the exact dw" seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let est = Analysis.Width_est.estimate forest in
      match est.Analysis.Width_est.dw_exact with
      | None -> QCheck.Test.fail_reportf "exact dw not computed"
      | Some dw ->
          dw <= est.Analysis.Width_est.dw_upper
          && dw = Wd_core.Domination_width.of_forest forest)

let test_plan_consumes_hints () =
  let p, _ = parse "{ ?x p:knows ?y OPTIONAL { ?y p:email ?m } }" in
  (* exact hint: planning skips the dw computation and trusts the value *)
  let hints = { Wd_core.Engine.dw_exact = Some 2; dw_upper = None } in
  let plan = Wd_core.Engine.plan ~hints p in
  check Alcotest.int "hinted dw is used" 2 plan.Wd_core.Engine.domination_width;
  (match plan.Wd_core.Engine.width_source with
  | Wd_core.Engine.From_hint { exact = true } -> ()
  | _ -> Alcotest.fail "expected From_hint {exact = true}");
  (* upper-bound hint: used when the exact computation exhausts *)
  let hints = { Wd_core.Engine.dw_exact = None; dw_upper = Some 3 } in
  let plan =
    Wd_core.Engine.plan ~budget:(Resource.Budget.make ~fuel:1 ()) ~hints p
  in
  check Alcotest.int "hinted upper bound on exhaustion" 3
    plan.Wd_core.Engine.domination_width;
  (match plan.Wd_core.Engine.width_source with
  | Wd_core.Engine.From_hint { exact = false } -> ()
  | _ -> Alcotest.fail "expected From_hint {exact = false}");
  (* an analyzer-produced hint reproduces the engine's own exact width *)
  let p = Testutil.wd_pattern_of_seed 42 in
  let est = Analysis.Width_est.estimate (Wdpt.Pattern_forest.of_algebra p) in
  let hinted = Wd_core.Engine.plan ~hints:(Analysis.Width_est.hints est) p in
  let unhinted = Wd_core.Engine.plan p in
  check Alcotest.int "hinted plan width = computed width"
    unhinted.Wd_core.Engine.domination_width
    hinted.Wd_core.Engine.domination_width;
  (* hinted evaluation still matches the reference semantics *)
  let graph = Testutil.graph_of_seed 43 in
  check Alcotest.bool "hinted plan answers correctly" true
    (Sparql.Mapping.Set.equal
       (Sparql.Eval.eval p graph)
       (Wd_core.Engine.solutions hinted graph))

(* ------------------------------------------------------------------ *)
(* Budget-discipline codebase lint (satellite: seeded violation)       *)
(* ------------------------------------------------------------------ *)

let with_scratch_tree files f =
  let root =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "wdsparql_lint_%d" (Unix.getpid ()))
  in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  if Sys.file_exists root then rm root;
  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      mkdir_p (Filename.dirname dir);
      Sys.mkdir dir 0o755
    end
  in
  List.iter
    (fun (rel, contents) ->
      let path = Filename.concat root rel in
      mkdir_p (Filename.dirname path);
      let oc = open_out path in
      output_string oc contents;
      close_out oc)
    files;
  Fun.protect ~finally:(fun () -> rm root) (fun () -> f root)

let test_strip () =
  let src =
    "let x = (* Pebble_game.wins (* nested *) *) 1\n\
     let s = \"Pebble_game.wins\"\n\
     let w = Pebble_game.wins\n"
  in
  let stripped = Lint_rules.strip src in
  check Alcotest.int "same length" (String.length src) (String.length stripped);
  check Alcotest.int "newlines preserved" 3
    (String.fold_left (fun k c -> if c = '\n' then k + 1 else k) 0 stripped);
  (* only the real call survives: one occurrence, on line 3 *)
  let occurrences =
    let needle = "Pebble_game.wins" in
    let rec go i acc =
      match String.index_from_opt stripped i 'P' with
      | None -> acc
      | Some j ->
          if
            j + String.length needle <= String.length stripped
            && String.sub stripped j (String.length needle) = needle
          then go (j + 1) (acc + 1)
          else go (j + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "comments and strings blanked" 1 occurrences

let test_codebase_lint_clean () =
  check (Alcotest.list Alcotest.string) "real tree has no lint surprises" []
    (List.map (Fmt.str "%a" Lint_rules.pp_violation)
       (with_scratch_tree
          [
            ("core/kernel.ml", "let search b = Resource.Budget.tick b\n");
            ("core/caller.ml", "let go = Pebble_game.wins\n");
          ]
          (fun root ->
            Lint_rules.check_tree ~manifest:[ "core/kernel.ml" ] ~root ())))

let test_codebase_lint_seeded () =
  with_scratch_tree
    [
      (* kernel that forgot its Budget.tick *)
      ("core/kernel.ml", "let search x = x + 1 (* Budget.tick mentioned *)\n");
      (* forbidden direct call outside lib/core, on line 2 *)
      ("wdpt/sneaky.ml", "let a = 1\nlet b = Pebble.Pebble_game.wins\n");
      (* string/comment mentions do not count *)
      ("rdf/honest.ml", "let s = \"Pebble_game.wins\" (* Pebble_game.wins *)\n");
    ]
    (fun root ->
      let violations = Lint_rules.check_tree ~manifest:[ "core/kernel.ml" ] ~root () in
      check Alcotest.int "exactly the two seeded violations" 2
        (List.length violations);
      let rendered = List.map (Fmt.str "%a" Lint_rules.pp_violation) violations in
      check Alcotest.bool "missing tick reported with file" true
        (List.exists
           (fun s ->
             Astring.String.is_infix ~affix:"core/kernel.ml:1" s
             && Astring.String.is_infix ~affix:"Budget.tick" s)
           rendered);
      check Alcotest.bool "forbidden wins reported with file:line" true
        (List.exists
           (fun s -> Astring.String.is_infix ~affix:"wdpt/sneaky.ml:2" s)
           rendered));
  (* a manifest entry that vanished (renamed kernel) is itself flagged *)
  with_scratch_tree
    [ ("core/present.ml", "let f b = Resource.Budget.tick b\n") ]
    (fun root ->
      let violations =
        Lint_rules.check_tree ~manifest:[ "core/gone.ml"; "core/present.ml" ]
          ~root ()
      in
      check Alcotest.int "missing manifest entry flagged" 1
        (List.length violations))

(* PR 6 satellite: raw socket I/O is confined to lib/server/io.ml. *)
let test_codebase_lint_raw_io () =
  with_scratch_tree
    [
      (* seeded violation: a bare Unix.read outside the io module, line 2 *)
      ( "workload/leaky.ml",
        "let buf = Bytes.create 64\nlet n fd = Unix.read fd buf 0 64\n" );
      (* the io module itself is allowed to use the raw calls *)
      ( "server/io.ml",
        "let read_chunk fd buf = Unix.read fd buf 0 (Bytes.length buf)\n\
         let write_all fd s = Unix.write_substring fd s 0 (String.length s)\n"
      );
      (* string/comment mentions elsewhere do not count *)
      ( "server/http.ml",
        "let doc = \"Unix.read\" (* never call Unix.write here *)\n" );
    ]
    (fun root ->
      let violations = Lint_rules.check_tree ~manifest:[] ~root () in
      let rendered =
        List.map (Fmt.str "%a" Lint_rules.pp_violation) violations
      in
      check Alcotest.int "exactly the seeded raw-I/O violation" 1
        (List.length violations);
      check Alcotest.bool "reported with file:line and the offending call"
        true
        (List.exists
           (fun s ->
             Astring.String.is_infix ~affix:"workload/leaky.ml:2" s
             && Astring.String.is_infix ~affix:"Unix.read" s)
           rendered))

(* PR 7 satellite: the cost-based planner's greedy loop is itself an
   exponential-adjacent kernel — it must stay under the budget
   discipline, so its module is in the manifest and a tickless
   replacement is flagged. *)
let test_codebase_lint_optimizer () =
  check Alcotest.bool "join_order.ml is in the kernel manifest" true
    (List.mem "optimizer/join_order.ml" Lint_rules.kernel_modules);
  with_scratch_tree
    [ ("optimizer/join_order.ml", "let compile ps = Array.length ps\n") ]
    (fun root ->
      let violations =
        Lint_rules.check_tree ~manifest:[ "optimizer/join_order.ml" ] ~root ()
      in
      check Alcotest.int "tickless planner flagged" 1 (List.length violations);
      check Alcotest.bool "flagged with the module path" true
        (List.exists
           (fun v ->
             Astring.String.is_infix ~affix:"optimizer/join_order.ml"
               (Fmt.str "%a" Lint_rules.pp_violation v))
           violations))

(* PR 8 satellite: the compiled store's mapping layer is confined to
   lib/storage — a Unix.map_file or Bigarray access anywhere else means
   the byte layout leaked past the closure views. *)
let test_codebase_lint_mmap () =
  with_scratch_tree
    [
      (* seeded violation: a mapping outside lib/storage, line 2 *)
      ( "encoded/shortcut.ml",
        "let open_it fd = fd\n\
         let arr fd = Unix.map_file fd Bigarray.int Bigarray.c_layout false\n"
      );
      (* the storage library itself is allowed *)
      ( "storage/storage.ml",
        "let map fd k = Unix.map_file fd k Bigarray.c_layout false [| 1 |]\n"
      );
      (* string/comment mentions elsewhere do not count *)
      ( "rdf/dictionary.ml",
        "let doc = \"Bigarray.Array1\" (* no Unix.map_file here *)\n" );
    ]
    (fun root ->
      let violations = Lint_rules.check_tree ~manifest:[] ~root () in
      let rendered =
        List.map (Fmt.str "%a" Lint_rules.pp_violation) violations
      in
      (* the seeded file mentions both needles on line 2; both count *)
      check Alcotest.bool "seeded mapping violation reported" true
        (List.exists
           (fun s ->
             Astring.String.is_infix ~affix:"encoded/shortcut.ml:2" s
             && Astring.String.is_infix ~affix:"Unix.map_file" s)
           rendered);
      check Alcotest.bool "only the seeded file is flagged" true
        (List.for_all
           (fun s -> Astring.String.is_infix ~affix:"encoded/shortcut.ml" s)
           rendered))

(* PR 9 satellite: the segment-merge kernel behind delta overlays walks
   every composed delta entry at load — it is in the budget manifest, so
   a tickless replacement is flagged. *)
let test_codebase_lint_overlay () =
  check Alcotest.bool "overlay.ml is in the kernel manifest" true
    (List.mem "storage/overlay.ml" Lint_rules.kernel_modules);
  with_scratch_tree
    [ ("storage/overlay.ml", "let merge adds dels = (adds, dels)\n") ]
    (fun root ->
      let violations =
        Lint_rules.check_tree ~manifest:[ "storage/overlay.ml" ] ~root ()
      in
      check Alcotest.int "tickless merge kernel flagged" 1
        (List.length violations);
      check Alcotest.bool "flagged with the module path" true
        (List.exists
           (fun v ->
             Astring.String.is_infix ~affix:"storage/overlay.ml"
               (Fmt.str "%a" Lint_rules.pp_violation v))
           violations))

(* PR 10 satellite: a module that creates a Mutex advertises multi-domain
   use — every mutation of its top-level Hashtbls must then take the
   lock, or it is a data race. lib/parallel owns the locking discipline
   and is exempt. *)
let test_codebase_lint_domain_safety () =
  check Alcotest.bool "satisfiability.ml is in the kernel manifest" true
    (List.mem "analysis/satisfiability.ml" Lint_rules.kernel_modules);
  with_scratch_tree
    [
      (* seeded violation: unguarded replace on a top-level table, line 3 *)
      ( "encoded/cachey.ml",
        "let lock = Mutex.create ()\n\
         let table = Hashtbl.create 7\n\
         let put k v = Hashtbl.replace table k v\n" );
      (* the guarded form is clean (and exercises the type annotation) *)
      ( "core/guarded.ml",
        "let lock = Mutex.create ()\n\
         let table : (int, int) Hashtbl.t = Hashtbl.create 7\n\
         let put k v = Mutex.protect lock (fun () -> Hashtbl.replace table k v)\n"
      );
      (* no mutex, no multi-domain claim: a plain table is fine *)
      ( "rdf/plain.ml",
        "let table = Hashtbl.create 7\nlet put k v = Hashtbl.add table k v\n" );
      (* the parallel runtime is exempt *)
      ( "parallel/pool.ml",
        "let lock = Mutex.create ()\n\
         let table = Hashtbl.create 7\n\
         let put k v = Hashtbl.replace table k v\n" );
    ]
    (fun root ->
      let violations = Lint_rules.check_tree ~manifest:[] ~root () in
      let rendered =
        List.map (Fmt.str "%a" Lint_rules.pp_violation) violations
      in
      check Alcotest.int "exactly the seeded violation" 1
        (List.length violations);
      check Alcotest.bool "reported with file:line and the table name" true
        (List.exists
           (fun s ->
             Astring.String.is_infix ~affix:"encoded/cachey.ml:3" s
             && Astring.String.is_infix ~affix:"Hashtbl.replace" s
             && Astring.String.is_infix ~affix:"table" s)
           rendered))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "analysis"
    [
      ( "designedness",
        [
          verdict_agreement_random;
          verdict_agreement_wd;
          weakly_is_not_well;
          Alcotest.test_case "translate carries the witness" `Quick
            test_translate_witness;
        ] );
      ( "json",
        [
          json_roundtrip;
          Alcotest.test_case "report JSON parses and decodes" `Quick
            test_report_json;
        ] );
      ( "spans",
        [
          Alcotest.test_case "parser spans" `Quick test_spans;
          Alcotest.test_case "pattern-forest node spans" `Quick test_node_spans;
        ] );
      ( "lints",
        [
          Alcotest.test_case "every rule fires on its minimal query" `Quick
            test_lint_triggers;
          Alcotest.test_case "unsatisfiable-triple is store-independent"
            `Quick test_unsatisfiable_triple;
        ] );
      ( "satisfiability",
        [
          Alcotest.test_case "hand-written verdicts" `Quick
            test_satisfiability_cases;
          satisfiability_differential;
        ] );
      ( "prune",
        [
          Alcotest.test_case "each rewrite rule fires and is exact" `Quick
            test_prune_rules;
          prune_soundness;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "equivalent spellings share a key" `Quick
            test_canonical_keys;
          canonical_rename_back;
          canonical_key_stable_under_renaming;
        ] );
      ( "width",
        [
          width_bounds_sound;
          Alcotest.test_case "Engine.plan consumes hints" `Quick
            test_plan_consumes_hints;
        ] );
      ( "codebase-lint",
        [
          Alcotest.test_case "strip blanks comments and strings" `Quick
            test_strip;
          Alcotest.test_case "clean scratch tree passes" `Quick
            test_codebase_lint_clean;
          Alcotest.test_case "seeded violations fail with file:line" `Quick
            test_codebase_lint_seeded;
          Alcotest.test_case "raw I/O confined to lib/server/io.ml" `Quick
            test_codebase_lint_raw_io;
          Alcotest.test_case "optimizer planner is budget-disciplined" `Quick
            test_codebase_lint_optimizer;
          Alcotest.test_case "mapped-store bytes confined to lib/storage"
            `Quick test_codebase_lint_mmap;
          Alcotest.test_case "segment-merge kernel is budget-disciplined"
            `Quick test_codebase_lint_overlay;
          Alcotest.test_case "mutexed modules lock their tables" `Quick
            test_codebase_lint_domain_safety;
        ] );
    ]
