(* Format v2 (lib/storage): delta segments and shard manifests. The
   load-bearing property is differential — a base store plus any chain
   of appended segments must be indistinguishable from a monolithic
   store recompiled from the same triple set: same answers, same
   counts, same planner statistics (compared through terms; the two id
   spaces differ). Plus chain validation, compact round-trips, lazy
   shard routing, and corruption fuzzing of segment and manifest files
   — damage always surfaces as [Wdsparql_error.Store_error]. *)

module E = Encoded.Encoded_graph
module Err = Wdsparql_error
module TS = Rdf.Triple.Set

let base_graph seed =
  Rdf.Generator.random_graph ~seed ~n:8 ~predicates:[ "q0"; "q1"; "q2" ] ~m:30

(* A disjoint-ish pool to draw additions from: overlapping subjects,
   one predicate the base never mentions, some fresh nodes — so appends
   grow the dictionary. *)
let add_pool seed =
  Rdf.Generator.random_graph ~seed ~n:11 ~predicates:[ "q1"; "q2"; "q3" ] ~m:24

let with_dir f =
  let dir = Filename.temp_file "wdsparql_delta" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

let fault_of f =
  match f () with
  | _ -> None
  | exception Err.Error (Err.Store_error { fault; _ }) -> Some fault

let structured_only f =
  match f () with
  | _ -> true
  | exception Err.Error _ -> true
  | exception _ -> false

let pp_fault = Fmt.of_to_string (fun f -> Fmt.str "%a" Err.pp_store_fault f)
let fault_t = Alcotest.testable pp_fault ( = )

let solutions ~optimize pattern graph =
  let plan = Wd_core.Engine.plan ~optimize pattern in
  Wd_core.Engine.solutions plan graph

(* The overlay store must agree with a monolithic compile of the same
   triple set on everything the planner and the evaluators consume.
   Statistics are compared through terms: an id of the monolithic store
   is translated to the overlay's id space via the dictionaries. *)
let check_equivalent ~ctx overlay mono =
  Alcotest.(check int) (ctx ^ ": cardinal") (E.cardinal mono)
    (E.cardinal overlay);
  let dm = E.dictionary mono and dv = E.dictionary overlay in
  Alcotest.(check int)
    (ctx ^ ": distinct subjects")
    (E.distinct_subjects mono)
    (E.distinct_subjects overlay);
  Alcotest.(check int)
    (ctx ^ ": distinct objects")
    (E.distinct_objects mono)
    (E.distinct_objects overlay);
  Alcotest.(check int)
    (ctx ^ ": distinct predicates")
    (E.distinct_predicates mono)
    (E.distinct_predicates overlay);
  for id = 0 to Rdf.Dictionary.size dm - 1 do
    let t = Rdf.Dictionary.term_of dm id in
    match Rdf.Dictionary.find dv t with
    | None ->
        Alcotest.failf "%s: term %s of the monolithic store is missing" ctx
          (Fmt.str "%a" Rdf.Term.pp t)
    | Some vid ->
        let a = E.predicate_stats mono id
        and b = E.predicate_stats overlay vid in
        Alcotest.(check (triple int int int))
          (ctx ^ ": predicate stats via terms")
          (a.E.triples, a.E.distinct_subjects, a.E.distinct_objects)
          (b.E.triples, b.E.distinct_subjects, b.E.distinct_objects);
        Alcotest.(check int)
          (ctx ^ ": match_count ?p")
          (E.match_count mono ~p:id ())
          (E.match_count overlay ~p:vid ())
  done;
  (* membership agrees triple for triple (and the overlay holds nothing
     extra — the cardinals already matched) *)
  for i = 0 to E.cardinal mono - 1 do
    let s, p, o = E.nth_spo mono i in
    let enc t = Option.get (Rdf.Dictionary.find dv (Rdf.Dictionary.term_of dm t)) in
    Alcotest.(check bool) (ctx ^ ": mem") true
      (E.mem overlay (enc s, enc p, enc o))
  done

let check_answers ~ctx ~seed handle mono_graph =
  for q = 1 to 3 do
    let pattern =
      Workload.Query_families.random_wd_pattern ~seed:((seed * 5) + q)
        ~triples:4 ~vars:4 ~preds:2 ~depth:2 ~union:1
    in
    List.iter
      (fun optimize ->
        let reference = solutions ~optimize pattern mono_graph in
        let got = solutions ~optimize pattern handle in
        if not (Sparql.Mapping.Set.equal reference got) then
          Alcotest.failf "%s: answers differ at seed %d (%s): %s" ctx seed
            (if optimize then "optimize on" else "optimize off")
            (Sparql.Printer.to_string pattern))
      [ true; false ]
  done

(* ------------------------------------------------------------------ *)
(* Randomized append sequences vs monolithic recompile                 *)
(* ------------------------------------------------------------------ *)

let test_append_differential () =
  for seed = 1 to 8 do
    with_dir (fun dir ->
        let path = Filename.concat dir "s.wds" in
        let g0 = base_graph seed in
        Storage.save (E.of_graph g0) path;
        let current = ref (TS.of_list (Rdf.Graph.triples g0)) in
        for step = 1 to 3 do
          let pool =
            Rdf.Graph.triples (add_pool ((seed * 13) + step))
          in
          let adds =
            List.filteri (fun i _ -> i mod (step + 1) = 0) pool
          in
          let dels =
            TS.elements !current
            |> List.filteri (fun i _ -> i mod 4 = step mod 4)
            |> List.filter (fun t -> not (List.mem t adds))
          in
          (match Storage.append ~adds ~dels path with
          | Some r ->
              Alcotest.(check bool)
                "segment file exists" true
                (Sys.file_exists r.Storage.app_file)
          | None ->
              (* possible only if every add was present and every del
                 absent — not with these pools *)
              Alcotest.fail "append produced no segment");
          current :=
            TS.union (TS.diff !current (TS.of_list dels)) (TS.of_list adds);
          let mono_graph = Rdf.Graph.of_triples (TS.elements !current) in
          let mono = E.of_graph mono_graph in
          E.clear_cache ();
          let overlay = Storage.load ~verify:true path in
          let ctx = Printf.sprintf "seed %d step %d" seed step in
          check_equivalent ~ctx overlay mono;
          E.clear_cache ();
          check_answers ~ctx ~seed (Storage.load_graph path) mono_graph;
          (* the chain's identity changed with the append, and info
             agrees with the live view *)
          let i = Storage.info path in
          Alcotest.(check int) (ctx ^ ": info live triples")
            (TS.cardinal !current) i.Storage.triples;
          Alcotest.(check int) (ctx ^ ": info identity")
            (E.epoch overlay) i.Storage.identity;
          match i.Storage.chain with
          | Storage.Chained segs ->
              Alcotest.(check int) (ctx ^ ": segment count") step
                (List.length segs)
          | _ -> Alcotest.fail (ctx ^ ": expected a chained store")
        done)
  done

let test_append_normalization () =
  with_dir (fun dir ->
      let path = Filename.concat dir "s.wds" in
      let g = base_graph 3 in
      Storage.save (E.of_graph g) path;
      let present = Rdf.Graph.triples g in
      let absent = Rdf.Graph.triples (add_pool 99) in
      let absent = List.filter (fun t -> not (List.mem t present)) absent in
      (* adds already present + deletes of absent triples net to zero *)
      Alcotest.(check bool) "no-op append writes nothing" true
        (Storage.append ~adds:present ~dels:absent path = None);
      Alcotest.(check bool) "no segment file" false
        (Sys.file_exists (Storage.seg_path path 1));
      (* a triple added and deleted in the same call nets to present:
         if it already is, both drop *)
      Alcotest.(check bool) "add+del of a present triple is a no-op" true
        (Storage.append ~adds:[ List.hd present ] ~dels:[ List.hd present ]
           path
        = None);
      (* identity unchanged by the no-ops *)
      let i = Storage.info path in
      Alcotest.(check int) "stamp identity" i.Storage.stamp
        i.Storage.chain_stamp)

(* ------------------------------------------------------------------ *)
(* Compact round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let test_compact_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "s.wds" in
      let g0 = base_graph 5 in
      Storage.save (E.of_graph g0) path;
      let adds = Rdf.Graph.triples (add_pool 50) in
      let dels =
        List.filteri (fun i _ -> i mod 3 = 0) (Rdf.Graph.triples g0)
        |> List.filter (fun t -> not (List.mem t adds))
      in
      ignore (Storage.append ~adds ~dels path);
      ignore
        (Storage.append
           ~dels:(List.filteri (fun i _ -> i mod 5 = 0) adds)
           path);
      E.clear_cache ();
      let before = Storage.load path in
      let live =
        List.init (E.cardinal before) (fun i ->
            Rdf.Dictionary.decode_triple (E.dictionary before)
              (E.nth_spo before i))
      in
      let r = Storage.compact path in
      Alcotest.(check int) "both segments folded" 2 r.Storage.folded;
      (* bit-identical to a fresh compile of the same triples: compare
         content stamps (which cover every payload byte) *)
      let fresh = Filename.concat dir "fresh.wds" in
      Storage.save (E.of_graph (Rdf.Graph.of_triples live)) fresh;
      let fi = Storage.info fresh and ci = Storage.info path in
      Alcotest.(check int) "compacted stamp = fresh compile stamp"
        fi.Storage.stamp ci.Storage.stamp;
      Alcotest.(check bool) "chain is single again"
        true (ci.Storage.chain = Storage.Single);
      Alcotest.(check bool) "segment files gone" false
        (Sys.file_exists (Storage.seg_path path 1));
      E.clear_cache ();
      let after = Storage.load ~verify:true path in
      Alcotest.(check int) "live count preserved" (List.length live)
        (E.cardinal after))

(* ------------------------------------------------------------------ *)
(* Chain validation                                                    *)
(* ------------------------------------------------------------------ *)

let chained_store dir =
  let path = Filename.concat dir "s.wds" in
  let g0 = base_graph 7 in
  Storage.save (E.of_graph g0) path;
  let pool = Rdf.Graph.triples (add_pool 70) in
  ignore (Storage.append ~adds:(List.filteri (fun i _ -> i mod 2 = 0) pool) path);
  ignore (Storage.append ~adds:(List.filteri (fun i _ -> i mod 2 = 1) pool) path);
  path

let test_chain_validation () =
  (* a gap in the numbering: .d1 removed while .d2 remains *)
  with_dir (fun dir ->
      let path = chained_store dir in
      Sys.remove (Storage.seg_path path 1);
      Alcotest.(check (option fault_t)) "gap in segment numbering"
        (Some Err.Corrupt)
        (fault_of (fun () -> Storage.load path)));
  (* the base was re-saved under the segments: parent stamp mismatch *)
  with_dir (fun dir ->
      let path = chained_store dir in
      Storage.save (E.of_graph (base_graph 8)) path;
      match fault_of (fun () -> Storage.load path) with
      | Some (Err.Delta_chain_broken _) -> ()
      | other ->
          Alcotest.failf "re-saved base: expected Delta_chain_broken, got %s"
            (match other with
            | None -> "success"
            | Some f -> Fmt.str "%a" pp_fault f));
  (* tampered parent-stamp bytes in the second segment *)
  with_dir (fun dir ->
      let path = chained_store dir in
      let seg = Storage.seg_path path 2 in
      let b = Bytes.of_string (read_file seg) in
      Bytes.set b 24 (Char.chr (Char.code (Bytes.get b 24) lxor 1));
      write_file seg (Bytes.to_string b);
      match fault_of (fun () -> Storage.load path) with
      | Some (Err.Delta_chain_broken _) -> ()
      | _ -> Alcotest.fail "tampered parent: expected Delta_chain_broken")

(* ------------------------------------------------------------------ *)
(* Segment corruption fuzzing                                          *)
(* ------------------------------------------------------------------ *)

let test_segment_fuzz () =
  with_dir (fun dir ->
      let path = chained_store dir in
      let seg = Storage.seg_path path 1 in
      let whole = read_file seg in
      let size = String.length whole in
      (* truncation at every layer: short-magic lengths must read as
         Truncated (the bytes prefix a known magic), never Bad_magic *)
      List.iter
        (fun len ->
          write_file seg (String.sub whole 0 len);
          Alcotest.(check (option fault_t))
            (Printf.sprintf "segment truncated to %d bytes" len)
            (Some Err.Truncated)
            (fault_of (fun () -> Storage.load path)))
        [ 0; 4; 7; 8; 100; 255 ];
      List.iter
        (fun len ->
          write_file seg (String.sub whole 0 len);
          Alcotest.(check bool)
            (Printf.sprintf "structured at %d bytes" len)
            true
            (structured_only (fun () -> Storage.load path)))
        [ 256; size / 2; size - 1 ];
      (* bit flips across the header: always the structured error (or a
         provably benign statistics change), never a crash *)
      for pos = 0 to min 255 (size - 1) do
        let b = Bytes.of_string whole in
        Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
        write_file seg (Bytes.to_string b);
        Alcotest.(check bool)
          (Printf.sprintf "header flip at %d" pos)
          true
          (structured_only (fun () -> Storage.load path))
      done;
      (* payload flips under ~verify: caught by the segment stamp *)
      let step = max 1 ((size - 256) / 16) in
      let pos = ref 256 in
      while !pos < size do
        let b = Bytes.of_string whole in
        Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x04));
        write_file seg (Bytes.to_string b);
        Alcotest.(check bool)
          (Printf.sprintf "payload flip at %d" !pos)
          true
          (structured_only (fun () -> Storage.load ~verify:true path));
        pos := !pos + step
      done;
      write_file seg whole;
      ignore (Storage.load ~verify:true path))

(* ------------------------------------------------------------------ *)
(* Sharding                                                            *)
(* ------------------------------------------------------------------ *)

let test_shard_differential () =
  with_dir (fun dir ->
      let path = Filename.concat dir "s.wds" in
      let g0 = base_graph 9 in
      Storage.save (E.of_graph g0) path;
      ignore (Storage.append ~adds:(Rdf.Graph.triples (add_pool 90)) path);
      E.clear_cache ();
      let overlay = Storage.load path in
      let live =
        List.init (E.cardinal overlay) (fun i ->
            Rdf.Dictionary.decode_triple (E.dictionary overlay)
              (E.nth_spo overlay i))
      in
      let mono_graph = Rdf.Graph.of_triples live in
      let mono = E.of_graph mono_graph in
      let man = Filename.concat dir "s.man" in
      let r = Storage.shard ~slices:4 ~src:path man in
      Alcotest.(check int) "member files" 4 (List.length r.Storage.sh_members);
      E.clear_cache ();
      let sharded = Storage.load ~verify:true man in
      check_equivalent ~ctx:"sharded" sharded mono;
      E.clear_cache ();
      check_answers ~ctx:"sharded" ~seed:9 (Storage.load_graph man) mono_graph)

let test_shard_lazy_routing () =
  with_dir (fun dir ->
      let path = Filename.concat dir "s.wds" in
      Storage.save (E.of_graph (base_graph 11)) path;
      let man = Filename.concat dir "s.man" in
      ignore (Storage.shard ~slices:4 ~src:path man);
      E.clear_cache ();
      let sharded = Storage.load man in
      Alcotest.(check (option int)) "nothing touched yet" (Some 0)
        (E.members_touched sharded);
      (* a predicate-bound probe forces only the owning member *)
      let dict = E.dictionary sharded in
      let pid =
        Option.get (Rdf.Dictionary.find dict (Rdf.Term.iri "p:q0"))
      in
      ignore (E.match_count sharded ~p:pid ());
      ignore (E.iter_matching sharded ~p:pid ~f:(fun _ -> ()) ());
      Alcotest.(check (option int)) "one member touched" (Some 1)
        (E.members_touched sharded);
      (* a predicate-free scan fans out to all members *)
      ignore (E.match_count sharded ~s:0 ());
      Alcotest.(check (option int)) "fan-out touches all" (Some 4)
        (E.members_touched sharded))

let test_manifest_fuzz () =
  with_dir (fun dir ->
      let path = Filename.concat dir "s.wds" in
      Storage.save (E.of_graph (base_graph 13)) path;
      let man = Filename.concat dir "s.man" in
      ignore (Storage.shard ~slices:3 ~src:path man);
      let whole = read_file man in
      let size = String.length whole in
      (* truncations *)
      List.iter
        (fun len ->
          write_file man (String.sub whole 0 len);
          Alcotest.(check (option fault_t))
            (Printf.sprintf "manifest truncated to %d" len)
            (Some Err.Truncated)
            (fault_of (fun () -> Storage.load man)))
        [ 0; 4; 7; 8; 255 ];
      List.iter
        (fun len ->
          write_file man (String.sub whole 0 len);
          Alcotest.(check bool)
            (Printf.sprintf "structured at %d" len)
            true
            (structured_only (fun () -> Storage.load man)))
        [ 256; size - 1 ];
      (* header and member-table bit flips *)
      let step = max 1 (size / 64) in
      let pos = ref 0 in
      while !pos < size do
        let b = Bytes.of_string whole in
        Bytes.set b !pos (Char.chr (Char.code (Bytes.get b !pos) lxor 0x20));
        write_file man (Bytes.to_string b);
        Alcotest.(check bool)
          (Printf.sprintf "manifest flip at %d" !pos)
          true
          (structured_only (fun () -> Storage.load ~verify:true man));
        pos := !pos + step
      done;
      write_file man whole;
      (* a member replaced by a different store: stamp pin fires *)
      let member = Filename.concat dir "s.man.s1" in
      let member_bytes = read_file member in
      Storage.save (E.of_graph (base_graph 14)) member;
      (match fault_of (fun () -> Storage.load man) with
      | Some (Err.Manifest_mismatch _) -> ()
      | _ -> Alcotest.fail "tampered member: expected Manifest_mismatch");
      write_file member member_bytes;
      (* a member deleted *)
      Sys.remove member;
      (match fault_of (fun () -> Storage.load man) with
      | Some (Err.Manifest_mismatch { member = m }) ->
          Alcotest.(check string) "names the member" "s.man.s1" m
      | _ -> Alcotest.fail "missing member: expected Manifest_mismatch");
      write_file member member_bytes;
      (* a member with trailing delta segments diverges from its pin *)
      ignore
        (Storage.append
           ~adds:(Rdf.Graph.triples (add_pool 77))
           member);
      (match fault_of (fun () -> Storage.load man) with
      | Some (Err.Manifest_mismatch _) -> ()
      | _ -> Alcotest.fail "member with segments: expected Manifest_mismatch");
      Sys.remove (Storage.seg_path member 1);
      ignore (Storage.load ~verify:true man))

(* ------------------------------------------------------------------ *)
(* Short-magic discrimination                                          *)
(* ------------------------------------------------------------------ *)

let test_short_magic () =
  let tmp = Filename.temp_file "wdsparql_magic" ".wds" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      List.iter
        (fun (bytes, expected, what) ->
          write_file tmp bytes;
          Alcotest.(check (option fault_t)) what (Some expected)
            (fault_of (fun () -> Storage.load tmp)))
        [
          ("", Err.Truncated, "empty file is truncated");
          ("WDS", Err.Truncated, "store-magic prefix is truncated");
          ("WDSMANI", Err.Truncated, "manifest-magic prefix is truncated");
          ("XYZ", Err.Bad_magic, "foreign short file is bad magic");
          ("NOTASTORE!", Err.Bad_magic, "foreign long file is bad magic");
        ])

let () =
  Alcotest.run "delta"
    [
      ( "append",
        [
          Alcotest.test_case "randomized chains = monolithic recompile"
            `Quick test_append_differential;
          Alcotest.test_case "normalization drops no-op deltas" `Quick
            test_append_normalization;
        ] );
      ( "compact",
        [
          Alcotest.test_case "round-trips to the fresh-compile stamp" `Quick
            test_compact_roundtrip;
        ] );
      ( "chain",
        [
          Alcotest.test_case "gaps and broken parents rejected" `Quick
            test_chain_validation;
          Alcotest.test_case "segment corruption is structured" `Quick
            test_segment_fuzz;
        ] );
      ( "shard",
        [
          Alcotest.test_case "manifest = monolithic recompile" `Quick
            test_shard_differential;
          Alcotest.test_case "lazy routing touches only the owner" `Quick
            test_shard_lazy_routing;
          Alcotest.test_case "manifest corruption is structured" `Quick
            test_manifest_fuzz;
        ] );
      ( "magic",
        [
          Alcotest.test_case "short files: Truncated vs Bad_magic" `Quick
            test_short_magic;
        ] );
    ]
