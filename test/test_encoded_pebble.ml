(* Cross-checks for the dictionary-encoded pebble kernel and the
   evaluation-wide cache: Encoded_pebble must agree with the reference
   Pebble_game on every input, and the cached evaluators must return
   exactly the answer sets of the term-level ones. *)

open Rdf
open Tgraphs

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 100000)
let v = Term.var
let iri = Term.iri
let t s p o = Triple.make s p o

let random_mu g graph seed =
  let iris = Iri.Set.elements (Graph.dom graph) in
  let state = Random.State.make [| seed; 5 |] in
  Variable.Set.fold
    (fun var acc ->
      Variable.Map.add var
        (Term.Iri (List.nth iris (Random.State.int state (List.length iris))))
        acc)
    (Gtgraph.x g) Variable.Map.empty

(* ------------------------------------------------------------------ *)
(* Kernel equivalence                                                  *)
(* ------------------------------------------------------------------ *)

let kernel_agrees k =
  qcheck ~count:120 (Printf.sprintf "Encoded_pebble = Pebble_game (k=%d)" k)
    seed_arb
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph =
        Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + k)
      in
      if Iri.Set.is_empty (Graph.dom graph) then true
      else begin
        let mu = random_mu g graph seed in
        let enc = Encoded.Encoded_graph.of_graph_cached graph in
        Encoded.Encoded_pebble.wins ~k g ~mu enc
        = Pebble.Pebble_game.wins ~k g ~mu graph
      end)

let kernel_agrees_unknown_iri =
  qcheck ~count:80 "kernel agrees when µ hits an IRI outside the graph"
    seed_arb
    (fun seed ->
      let g = Testutil.gtgraph_of_seed ~triples:3 ~vars:3 seed in
      let graph =
        Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:8 (seed + 17)
      in
      match Variable.Set.choose_opt (Gtgraph.x g) with
      | None -> true
      | Some victim ->
          if Iri.Set.is_empty (Graph.dom graph) then true
          else begin
            let mu =
              Variable.Map.add victim
                (Term.Iri (Iri.of_string "z:not-in-graph"))
                (random_mu g graph seed)
            in
            let enc = Encoded.Encoded_graph.of_graph_cached graph in
            Encoded.Encoded_pebble.wins ~k:2 g ~mu enc
            = Pebble.Pebble_game.wins ~k:2 g ~mu graph
          end)

let test_kernel_classics () =
  (* the classic separation: C3 fools 2 pebbles, not 3 *)
  let k3_pattern =
    Tgraph.of_triples
      [
        t (v "o1") (iri "p:r") (v "o2");
        t (v "o1") (iri "p:r") (v "o3");
        t (v "o2") (iri "p:r") (v "o3");
      ]
  in
  let closed = Gtgraph.make k3_pattern Variable.Set.empty in
  let no_mu = Variable.Map.empty in
  let c3 = Generator.cycle ~n:3 ~pred:"r" in
  let enc = Encoded.Encoded_graph.of_graph c3 in
  check Alcotest.bool "2 pebbles fooled" true
    (Encoded.Encoded_pebble.wins ~k:2 closed ~mu:no_mu enc);
  check Alcotest.bool "3 pebbles exact" false
    (Encoded.Encoded_pebble.wins ~k:3 closed ~mu:no_mu enc)

let test_kernel_invalid_args () =
  Alcotest.check_raises "k >= 1"
    (Invalid_argument "Encoded_pebble.compile: k must be at least 1")
    (fun () ->
      ignore
        (Encoded.Encoded_pebble.compile ~k:0
           (Gtgraph.make Tgraph.empty Variable.Set.empty)
           (Encoded.Encoded_graph.of_graph Graph.empty)));
  let s = Tgraph.of_triples [ t (v "x") (iri "p:r") (v "y") ] in
  let g = Gtgraph.make s (Variable.Set.singleton (Variable.of_string "x")) in
  Alcotest.check_raises "µ covers X"
    (Invalid_argument "Encoded_pebble.wins: µ does not cover X")
    (fun () ->
      ignore
        (Encoded.Encoded_pebble.wins ~k:2 g ~mu:Variable.Map.empty
           (Encoded.Encoded_graph.of_graph Graph.empty)))

let test_kernel_stats () =
  Encoded.Encoded_pebble.reset_stats ();
  check Alcotest.int "reset" 0 (Encoded.Encoded_pebble.stats_families_explored ());
  let s = Tgraph.of_triples [ t (v "x") (iri "p:r") (v "y") ] in
  let g = Gtgraph.make s Variable.Set.empty in
  let graph = Generator.path ~n:4 ~pred:"r" in
  ignore
    (Encoded.Encoded_pebble.wins ~k:2 g ~mu:Variable.Map.empty
       (Encoded.Encoded_graph.of_graph graph));
  check Alcotest.bool "counted" true
    (Encoded.Encoded_pebble.stats_families_explored () > 0)

(* ------------------------------------------------------------------ *)
(* Cached evaluators return identical answer sets                      *)
(* ------------------------------------------------------------------ *)

let forest_of_seed seed =
  Wdpt.Pattern_forest.of_algebra (Testutil.wd_pattern_of_seed ~triples:5 seed)

let term_kernel = Wd_core.Pebble_eval.Term

let pebble_eval_solutions_agree =
  qcheck ~count:40 "Pebble_eval.solutions: cached = term kernel" seed_arb
    (fun seed ->
      let forest = forest_of_seed seed in
      let graph =
        Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:9 (seed + 23)
      in
      let cached = Wd_core.Pebble_eval.solutions ~k:2 forest graph in
      let term =
        Wd_core.Pebble_eval.solutions ~kernel:term_kernel ~k:2 forest graph
      in
      Sparql.Mapping.Set.equal cached term)

let pebble_eval_check_agrees =
  qcheck ~count:60 "Pebble_eval.check: cached = term kernel" seed_arb
    (fun seed ->
      let pattern = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra pattern in
      let graph =
        Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:9 (seed + 29)
      in
      let mu = Testutil.mapping_for pattern graph seed in
      Wd_core.Pebble_eval.check ~k:2 forest graph mu
      = Wd_core.Pebble_eval.check ~kernel:term_kernel ~k:2 forest graph mu)

let enumerate_solutions_agree =
  qcheck ~count:40 "Enumerate.solutions: cached = term kernel" seed_arb
    (fun seed ->
      let forest = forest_of_seed seed in
      let graph =
        Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:9 (seed + 31)
      in
      let cached =
        Wd_core.Enumerate.solutions ~maximality:(`Pebble 2) forest graph
      in
      let term =
        Wd_core.Enumerate.solutions ~maximality:(`Pebble 2)
          ~kernel:term_kernel forest graph
      in
      Sparql.Mapping.Set.equal cached term)

let memo_off_agrees =
  qcheck ~count:40 "Enumerate.solutions: memoized = memo-disabled cache"
    seed_arb
    (fun seed ->
      let forest = forest_of_seed seed in
      let graph =
        Testutil.graph_of_seed ~nodes:4 ~preds:2 ~triples:9 (seed + 37)
      in
      let on =
        Wd_core.Enumerate.solutions ~maximality:(`Pebble 2)
          ~kernel:(Wd_core.Pebble_eval.Cached (Wd_core.Pebble_cache.create graph))
          forest graph
      in
      let off =
        Wd_core.Enumerate.solutions ~maximality:(`Pebble 2)
          ~kernel:
            (Wd_core.Pebble_eval.Cached
               (Wd_core.Pebble_cache.create ~memo:false graph))
          forest graph
      in
      Sparql.Mapping.Set.equal on off)

(* ------------------------------------------------------------------ *)
(* Cache behaviour                                                     *)
(* ------------------------------------------------------------------ *)

let test_cache_stats () =
  (* a root + optional child over a tournament: every candidate µ issues
     the same child game, so verdicts repeat and games compile once *)
  let p =
    Sparql.Algebra.(
      opt
        (triple (t (v "x") (iri "p:r") (v "y")))
        (triple (t (v "y") (iri "p:r") (v "z"))))
  in
  let forest = Wdpt.Pattern_forest.of_algebra p in
  let graph = Generator.transitive_tournament ~n:6 ~pred:"r" in
  let cache = Wd_core.Pebble_cache.create graph in
  let answers =
    Wd_core.Enumerate.solutions ~maximality:(`Pebble 2)
      ~kernel:(Wd_core.Pebble_eval.Cached cache) forest graph
  in
  let stats = Wd_core.Pebble_cache.stats cache in
  check Alcotest.bool "some answers" true
    (not (Sparql.Mapping.Set.is_empty answers));
  check Alcotest.bool "games compiled" true (stats.compiled > 0);
  check Alcotest.bool "misses counted" true (stats.misses > 0);
  check Alcotest.bool "verdicts were reused" true (stats.hits > 0);
  let off = Wd_core.Pebble_cache.create ~memo:false graph in
  ignore
    (Wd_core.Enumerate.solutions ~maximality:(`Pebble 2)
       ~kernel:(Wd_core.Pebble_eval.Cached off) forest graph);
  let off_stats = Wd_core.Pebble_cache.stats off in
  check Alcotest.int "memo off: no hits" 0 off_stats.hits;
  check Alcotest.bool "memo off: recompiles" true
    (off_stats.compiled > stats.compiled)

let test_engine_stats () =
  let p =
    Sparql.Algebra.(
      opt
        (triple (t (v "x") (iri "p:r") (v "y")))
        (triple (t (v "y") (iri "p:r") (v "z"))))
  in
  let graph = Generator.transitive_tournament ~n:5 ~pred:"r" in
  let plan = Wd_core.Engine.plan p in
  let sols, stats = Wd_core.Engine.solutions_stats plan graph in
  check Alcotest.bool "pebble plan reports stats" true (stats <> None);
  check Alcotest.bool "answers" true (not (Sparql.Mapping.Set.is_empty sols));
  let naive = Wd_core.Engine.plan ~force:Wd_core.Engine.Naive p in
  let sols', stats' = Wd_core.Engine.solutions_stats naive graph in
  check Alcotest.bool "naive plan has no stats" true (stats' = None);
  check Testutil.mapping_set "same answers" sols sols'

let test_graph_encoding_memo () =
  Encoded.Encoded_graph.clear_cache ();
  let graph = Generator.path ~n:4 ~pred:"r" in
  let a = Encoded.Encoded_graph.of_graph_cached graph in
  let b = Encoded.Encoded_graph.of_graph_cached graph in
  check Alcotest.bool "same encoding object" true (a == b);
  Encoded.Encoded_graph.clear_cache ();
  let c = Encoded.Encoded_graph.of_graph_cached graph in
  check Alcotest.bool "cleared cache re-encodes" true (c != a);
  check Alcotest.int "same content" (Encoded.Encoded_graph.cardinal a)
    (Encoded.Encoded_graph.cardinal c)

let () =
  Alcotest.run "encoded_pebble"
    [
      ( "kernel",
        [
          Alcotest.test_case "classic instances" `Quick test_kernel_classics;
          Alcotest.test_case "invalid arguments" `Quick test_kernel_invalid_args;
          Alcotest.test_case "stats" `Quick test_kernel_stats;
          kernel_agrees 2;
          kernel_agrees 3;
          kernel_agrees_unknown_iri;
        ] );
      ( "evaluators",
        [
          pebble_eval_solutions_agree;
          pebble_eval_check_agrees;
          enumerate_solutions_agree;
          memo_off_agrees;
        ] );
      ( "cache",
        [
          Alcotest.test_case "stats and reuse" `Quick test_cache_stats;
          Alcotest.test_case "engine surfacing" `Quick test_engine_stats;
          Alcotest.test_case "graph encoding memo" `Quick test_graph_encoding_memo;
        ] );
    ]
