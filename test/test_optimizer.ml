(* PR 7: the cost-based planner (lib/optimizer) and its integration.

   The contract under test:
   - the optimizer never changes answers: 300 random (query, store)
     instances evaluated with --optimize off / static / on all agree
     with the reference algebra evaluator;
   - compiled orders are permutations of the node's patterns, estimates
     are nonnegative and finite, and the cost model is monotone under
     binding (more bound variables can only shrink an estimate);
   - the zero-pattern guard in Encoded_hom.fold: a node with no triple
     patterns yields exactly one homomorphism (the prefix itself) under
     every strategy;
   - --explain surfaces the decisions: compiled order, estimates next
     to actuals, and the pebble-vs-naive maximality verdict. *)

open Rdf
module Enumerate = Wd_core.Enumerate
module Explain = Wd_core.Explain
module Join_order = Optimizer.Join_order
module Cost_model = Optimizer.Cost_model
module Encoded_graph = Encoded.Encoded_graph
module Encoded_hom = Encoded.Encoded_hom

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Differential fuzz: the optimizer is invisible in the answers        *)
(* ------------------------------------------------------------------ *)

let test_equivalence_300 () =
  for s = 1 to 300 do
    let pattern =
      Workload.Query_families.random_wd_pattern ~seed:s ~triples:6 ~vars:6
        ~preds:2 ~depth:3 ~union:2
    in
    let graph =
      Rdf.Generator.random_graph ~seed:(s * 7 + 1) ~n:6
        ~predicates:[ "q0"; "q1" ] ~m:18
    in
    let forest = Wdpt.Pattern_forest.of_algebra pattern in
    let dw = Wd_core.Domination_width.of_forest forest in
    let reference = Sparql.Eval.eval pattern graph in
    List.iter
      (fun (name, optimize) ->
        let got =
          Enumerate.solutions ~maximality:(`Pebble dw) ~optimize forest graph
        in
        if not (Sparql.Mapping.Set.equal got reference) then
          Alcotest.failf
            "seed %d: --optimize %s diverges from the reference evaluator\n\
             query: %s"
            s name
            (Sparql.Printer.to_string pattern))
      [ ("off", `Off); ("static", `Static); ("on", `On) ]
  done

(* ------------------------------------------------------------------ *)
(* Planner properties                                                  *)
(* ------------------------------------------------------------------ *)

let nvars = 6

(* Random compiled patterns over [nvars] slots: variables and small
   constant ids (some absent from the store's dictionary, which must be
   fine — absent ids just estimate to 0). *)
let pterm_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun v -> Encoded_hom.Var v) (int_bound (nvars - 1)));
        (2, map (fun c -> Encoded_hom.Const c) (int_bound 12));
      ])

let pattern_gen = QCheck.Gen.(triple pterm_gen pterm_gen pterm_gen)

let instance_gen =
  QCheck.Gen.(
    map3
      (fun seed pats bound_mask -> (seed, Array.of_list pats, bound_mask))
      (int_bound 1_000_000)
      (list_size (int_range 0 6) pattern_gen)
      (array_size (return nvars) bool))

let instance_arb =
  QCheck.make instance_gen ~print:(fun (seed, pats, _) ->
      Printf.sprintf "seed %d, %d patterns" seed (Array.length pats))

let store seed =
  Encoded_graph.of_graph
    (Rdf.Generator.zipf ~seed:(1 + (seed mod 97)) ~n:20
       ~predicates:[ "q0"; "q1"; "q2" ] ~m:60 ~exponent:1.2 ())

let compile_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300 ~name:"orders are permutations, costs sane"
       instance_arb
       (fun (seed, pats, bound_mask) ->
         let enc = store seed in
         let d =
           Join_order.compile enc ~nvars
             ~bound:(fun v -> bound_mask.(v))
             ~node:0 pats
         in
         let npat = Array.length pats in
         let seen = Array.make npat false in
         Array.iter
           (fun i ->
             if i < 0 || i >= npat || seen.(i) then
               QCheck.Test.fail_report "order is not a permutation";
             seen.(i) <- true)
           d.Join_order.order;
         Array.length d.Join_order.order = npat
         && Array.length d.Join_order.est_cards = npat
         && Array.for_all
              (fun c -> c >= 0. && Float.is_finite c)
              d.Join_order.est_cards
         && d.Join_order.est_candidates >= 0.))

let monotone_prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:300
       ~name:"estimates are monotone under binding" instance_arb
       (fun (seed, pats, bound_mask) ->
         let enc = store seed in
         Array.for_all
           (fun pat ->
             let loose = Cost_model.estimate enc ~bound:(fun _ -> false) pat in
             let partial =
               Cost_model.estimate enc ~bound:(fun v -> bound_mask.(v)) pat
             in
             let tight = Cost_model.estimate enc ~bound:(fun _ -> true) pat in
             tight <= partial +. 1e-9 && partial <= loose +. 1e-9)
           pats))

(* ------------------------------------------------------------------ *)
(* Zero-pattern guard                                                  *)
(* ------------------------------------------------------------------ *)

let test_zero_pattern_fold () =
  let enc =
    Encoded_graph.of_graph
      (Rdf.Generator.random_graph ~seed:3 ~n:5 ~predicates:[ "q0" ] ~m:10)
  in
  let source = Encoded_hom.compile Tgraphs.Tgraph.empty enc in
  List.iter
    (fun (name, strategy) ->
      let folded =
        Encoded_hom.fold ~strategy source ~init:[] ~f:(fun acc h ->
            (Array.copy h :: acc, `Continue))
      in
      check Alcotest.int (name ^ ": exactly one homomorphism") 1
        (List.length folded);
      check Alcotest.int (name ^ ": empty count") 1
        (Encoded_hom.count source))
    [
      ("rescore", Encoded_hom.Rescore);
      ("fixed", Encoded_hom.Fixed [||]);
      ("adaptive", Encoded_hom.Adaptive [||]);
    ]

(* ------------------------------------------------------------------ *)
(* Explain surfaces the decisions                                      *)
(* ------------------------------------------------------------------ *)

let explain_pattern =
  Sparql.Parser.parse_exn
    "{ ?a p:knows ?b . ?a p:worksAt ?w . OPTIONAL { ?b p:email ?m } }"

let explain_graph = Generator.social ~seed:11 ~people:25

let test_explain_decisions () =
  let report = Explain.explain explain_pattern explain_graph in
  List.iter
    (fun tree_plan ->
      List.iter
        (fun np ->
          match np.Explain.decision with
          | None -> Alcotest.fail "optimizer on: a node plan lacks a decision"
          | Some d ->
              check Alcotest.int "order covers the node's triples"
                (List.length np.Explain.triples)
                (Array.length d.Join_order.order))
        tree_plan)
    report.Explain.trees;
  let rendered = Fmt.str "%a" Explain.pp report in
  check Alcotest.bool "maximality verdict is visible" true
    (Astring.String.is_infix ~affix:"maximality test:" rendered);
  check Alcotest.bool "estimates shown next to actuals" true
    (Astring.String.is_infix ~affix:"est ~" rendered);
  (* and with the optimizer off, no decisions are computed *)
  let off = Explain.explain ~optimize:false explain_pattern explain_graph in
  List.iter
    (List.iter (fun np ->
         check Alcotest.bool "optimizer off: no decision" true
           (np.Explain.decision = None)))
    off.Explain.trees

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "optimizer"
    [
      ( "equivalence",
        [
          Alcotest.test_case "300 random instances, three modes" `Quick
            test_equivalence_300;
        ] );
      ("properties", [ compile_prop; monotone_prop ]);
      ( "regressions",
        [
          Alcotest.test_case "zero-pattern node folds once" `Quick
            test_zero_pattern_fold;
        ] );
      ( "explain",
        [
          Alcotest.test_case "decisions and verdicts surfaced" `Quick
            test_explain_decisions;
        ] );
    ]
