(* PR 4: multicore candidate checking. The contract under test: the
   domain pool preserves input order and first-exception semantics;
   forked budgets share one fuel account and one cancellation flag, so
   any member tripping stops the group within a lease; and
   [solutions ~domains:n] is indistinguishable from [~domains:1] —
   same answers in the same order, same number of verdict lookups —
   for every n. *)

open Rdf
module Pool = Parallel.Pool
module Budget = Resource.Budget
module Engine = Wd_core.Engine
module Enumerate = Wd_core.Enumerate
module Plan_cache = Wd_core.Plan_cache
module Pebble_cache = Wd_core.Pebble_cache

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Pool units                                                          *)
(* ------------------------------------------------------------------ *)

let test_map_order () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let items = List.init 257 Fun.id in
  let out =
    Pool.map_stream pool
      ~init:(fun slot -> slot)
      ~f:(fun _ x -> x * x)
      items
  in
  check
    Alcotest.(list int)
    "results in input order"
    (List.map (fun x -> x * x) items)
    out;
  (* a batch shorter than the chunking threshold stays inline *)
  check Alcotest.(list int) "singleton batch" [ 49 ]
    (Pool.map_stream pool ~init:(fun _ -> ()) ~f:(fun () x -> x * x) [ 7 ])

let test_fold_merge_order () =
  Pool.with_pool ~domains:3 @@ fun pool ->
  let items = List.init 100 Fun.id in
  let acc =
    Pool.fold_ordered pool
      ~init:(fun _ -> ())
      ~f:(fun () x -> x)
      ~merge:(fun acc x -> x :: acc)
      [] items
  in
  check Alcotest.(list int) "merge sees sequential order" (List.rev items) acc

let test_worker_state_per_slot () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let inits = Atomic.make 0 in
  let out =
    Pool.map_stream pool
      ~init:(fun slot ->
        Atomic.incr inits;
        slot)
      ~f:(fun slot _ -> slot)
      (List.init 500 Fun.id)
  in
  check Alcotest.bool "init ran at most once per slot" true
    (Atomic.get inits <= 4);
  check Alcotest.bool "slots are within the pool" true
    (List.for_all (fun s -> s >= 0 && s < 4) out)

let test_exception_cancels () =
  Pool.with_pool ~domains:4 @@ fun pool ->
  let processed = Atomic.make 0 in
  let n = 1000 in
  match
    Pool.map_stream pool
      ~init:(fun _ -> ())
      ~f:(fun () x ->
        Atomic.incr processed;
        if x = 0 then failwith "boom";
        x)
      (List.init n Fun.id)
  with
  | _ -> Alcotest.fail "the worker's exception was swallowed"
  | exception Failure msg ->
      check Alcotest.string "first exception is re-raised" "boom" msg;
      check Alcotest.bool "remaining items were skipped cooperatively" true
        (Atomic.get processed < n)

(* ------------------------------------------------------------------ *)
(* Budget forking                                                      *)
(* ------------------------------------------------------------------ *)

let test_fork_unlimited () =
  let views = Budget.fork Budget.unlimited 4 in
  check Alcotest.int "four views" 4 (Array.length views);
  Array.iter
    (fun v -> check Alcotest.bool "unlimited stays unlimited" false
        (Budget.is_limited v))
    views

let test_fork_fuel_exact () =
  let fuel = 1000 in
  let b = Budget.make ~fuel () in
  let views = Budget.fork b 3 in
  let total = ref 0 in
  (try
     Array.iter
       (fun v ->
         for _ = 1 to 10 * fuel do
           Budget.tick v;
           incr total
         done)
       views
   with Budget.Exhausted _ -> ());
  (* same contract as the unforked budget (see test_resource): fuel f
     permits f-1 ticks, the f-th raises *)
  check Alcotest.int "the group's ticks total exactly the fuel" (fuel - 1)
    !total

let test_cancel_trips_siblings () =
  let b = Budget.make ~fuel:1_000_000 () in
  let views = Budget.fork b 2 in
  Budget.cancel views.(0);
  let ticks = ref 0 in
  (try
     for _ = 1 to 1000 do
       Budget.tick views.(1);
       incr ticks
     done;
     Alcotest.fail "sibling kept running after cancel"
   with Budget.Exhausted _ -> ());
  check Alcotest.bool "sibling stopped within one lease" true (!ticks <= 64)

let test_exhaustion_trips_siblings () =
  let b = Budget.make ~fuel:100 () in
  let views = Budget.fork b 2 in
  (* view 0 drains the whole pool *)
  (try
     while true do
       Budget.tick views.(0)
     done
   with Budget.Exhausted _ -> ());
  let ticks = ref 0 in
  (try
     for _ = 1 to 1000 do
       Budget.tick views.(1);
       incr ticks
     done;
     Alcotest.fail "sibling kept running after exhaustion"
   with Budget.Exhausted _ -> ());
  check Alcotest.bool "sibling stopped within one lease" true (!ticks <= 64)

let test_join_returns_fuel () =
  let b = Budget.make ~fuel:1000 () in
  let views = Budget.fork b 2 in
  for _ = 1 to 100 do
    Budget.tick views.(0)
  done;
  Budget.join b views;
  check Alcotest.int "workers' spending is folded into the parent" 100
    (Budget.spent b);
  (* the parent got the unspent fuel back: 900 units remain, which — by
     the fuel f = f-1 ticks contract — permit exactly 899 more ticks *)
  let total = ref 0 in
  (try
     for _ = 1 to 10_000 do
       Budget.tick b;
       incr total
     done
   with Budget.Exhausted _ -> ());
  check Alcotest.int "unspent fuel returned to the parent" 899 !total

(* ------------------------------------------------------------------ *)
(* Parallel evaluation: determinism                                    *)
(* ------------------------------------------------------------------ *)

let determinism_prop =
  QCheck.Test.make ~count:25
    ~name:"solutions ~domains:n = solutions ~domains:1 (same order)"
    (QCheck.make
       ~print:(fun (g, q) -> Printf.sprintf "graph seed %d, query seed %d" g q)
       QCheck.Gen.(pair Testutil.seed_gen Testutil.seed_gen))
    (fun (gseed, qseed) ->
      let graph = Testutil.graph_of_seed ~nodes:8 ~preds:2 ~triples:20 gseed in
      let p = Testutil.wd_pattern_of_seed ~union:1 ~triples:5 qseed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let base = Enumerate.solutions ~maximality:(`Pebble 2) forest graph in
      List.for_all
        (fun n ->
          let s =
            Enumerate.solutions ~maximality:(`Pebble 2) ~domains:n forest
              graph
          in
          Sparql.Mapping.Set.equal s base
          && List.equal
               (fun a b -> Sparql.Mapping.compare a b = 0)
               (Sparql.Mapping.Set.elements s)
               (Sparql.Mapping.Set.elements base))
        [ 2; 4 ])

let pattern =
  Sparql.Parser.parse_exn
    "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } OPTIONAL { ?a p:knows ?c } }"

let graph = Generator.social ~seed:7 ~people:40

let test_stats_merge () =
  let lookups domains =
    (* Pin the pebble path: with the optimizer on, the sequential walk
       answers small-node maximality through the naive verdict memo
       while worker domains always stage pebble tests, so the pebble
       counters are only domain-invariant with the optimizer off. *)
    let plan = Engine.plan ~optimize:false pattern in
    let answers, s = Engine.solutions_stats ~domains plan graph in
    let s = (Option.get s).Plan_cache.pebble in
    check Alcotest.bool "answers match the reference" true
      (Sparql.Mapping.Set.equal answers (Sparql.Eval.eval pattern graph));
    (s.Pebble_cache.hits + s.Pebble_cache.misses, s.Pebble_cache.compiled)
  in
  let l1, c1 = lookups 1 in
  let l2, c2 = lookups 2 in
  let l4, c4 = lookups 4 in
  check Alcotest.int "verdict lookups invariant at 2 domains" l1 l2;
  check Alcotest.int "verdict lookups invariant at 4 domains" l1 l4;
  check Alcotest.int "games compiled once at 2 domains" c1 c2;
  check Alcotest.int "games compiled once at 4 domains" c1 c4

(* ------------------------------------------------------------------ *)
(* Budget propagation into workers                                     *)
(* ------------------------------------------------------------------ *)

let test_parallel_exhaustion_phase () =
  let big = Generator.social ~seed:21 ~people:80 in
  let plan = Engine.plan pattern in
  match Engine.solutions ~budget:(Budget.make ~fuel:500 ()) ~domains:2 plan big
  with
  | _ -> Alcotest.fail "a 500-tick budget should not cover this evaluation"
  | exception Budget.Exhausted { phase; spent } ->
      check Alcotest.bool "phase names an evaluation stage" true
        (List.mem phase [ "enumerate"; "pebble"; "hom" ]);
      check Alcotest.bool "spent is positive" true (spent > 0)

let test_parallel_deadline_prompt () =
  let big = Generator.social ~seed:22 ~people:150 in
  let plan = Engine.plan pattern in
  let t0 = Unix.gettimeofday () in
  (match
     Engine.solutions
       ~budget:(Budget.make ~timeout:0.02 ())
       ~domains:4 plan big
   with
  | _ -> () (* finished under the deadline: nothing to time *)
  | exception Budget.Exhausted _ -> ());
  let elapsed = Unix.gettimeofday () -. t0 in
  check Alcotest.bool
    (Printf.sprintf "workers stopped promptly (%.3fs)" elapsed)
    true (elapsed < 5.0)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map_stream order" `Quick test_map_order;
          Alcotest.test_case "fold_ordered merge order" `Quick
            test_fold_merge_order;
          Alcotest.test_case "worker state per slot" `Quick
            test_worker_state_per_slot;
          Alcotest.test_case "exception cancels batch" `Quick
            test_exception_cancels;
        ] );
      ( "budget",
        [
          Alcotest.test_case "fork unlimited" `Quick test_fork_unlimited;
          Alcotest.test_case "fork conserves fuel" `Quick test_fork_fuel_exact;
          Alcotest.test_case "cancel trips siblings" `Quick
            test_cancel_trips_siblings;
          Alcotest.test_case "exhaustion trips siblings" `Quick
            test_exhaustion_trips_siblings;
          Alcotest.test_case "join returns fuel" `Quick test_join_returns_fuel;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest determinism_prop;
          Alcotest.test_case "stats merge consistent" `Quick test_stats_merge;
        ] );
      ( "budget propagation",
        [
          Alcotest.test_case "exhaustion carries the phase" `Quick
            test_parallel_exhaustion_phase;
          Alcotest.test_case "deadline stops workers promptly" `Quick
            test_parallel_deadline_prompt;
        ] );
    ]
