(* The compiled on-disk store (lib/storage): round-trip fidelity,
   differential equivalence of evaluation over the mapped store against
   the heap store, stable identity across reloads, cache-eviction safety
   (including parallel evaluation), and corruption fuzzing — a damaged
   file must always surface as [Wdsparql_error.Store_error], never a raw
   [Failure] or a crash inside the mapping. *)

module E = Encoded.Encoded_graph
module Err = Wdsparql_error
module Budget = Resource.Budget

let graph_of seed =
  Rdf.Generator.random_graph ~seed ~n:8 ~predicates:[ "q0"; "q1"; "q2" ] ~m:30

let with_store_file enc f =
  let path = Filename.temp_file "wdsparql_test" ".wds" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Storage.save enc path;
      f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Round trip                                                          *)
(* ------------------------------------------------------------------ *)

let test_roundtrip () =
  for seed = 1 to 25 do
    let g = graph_of seed in
    let enc = E.of_graph g in
    with_store_file enc (fun path ->
        let l = Storage.load ~verify:true path in
        Alcotest.(check int) "cardinal" (E.cardinal enc) (E.cardinal l);
        Alcotest.(check bool) "identity is negative" true (E.epoch l < 0);
        (* the saved dictionary preserves ids, so the raw permutations
           must agree tuple-for-tuple *)
        for i = 0 to E.cardinal enc - 1 do
          Alcotest.(check (triple int int int))
            "spo tuple" (E.nth_spo enc i) (E.nth_spo l i);
          Alcotest.(check (triple int int int))
            "pos tuple" (E.nth_pos enc i) (E.nth_pos l i);
          Alcotest.(check (triple int int int))
            "osp tuple" (E.nth_osp enc i) (E.nth_osp l i)
        done;
        (* dictionary: decode and reverse lookup agree on every id *)
        let d = E.dictionary enc and dl = E.dictionary l in
        Alcotest.(check int) "dict size" (Rdf.Dictionary.size d)
          (Rdf.Dictionary.size dl);
        for id = 0 to Rdf.Dictionary.size d - 1 do
          let t = Rdf.Dictionary.term_of d id in
          Alcotest.(check bool) "decode agrees" true
            (Rdf.Term.equal t (Rdf.Dictionary.term_of dl id));
          Alcotest.(check (option int)) "reverse lookup" (Some id)
            (Rdf.Dictionary.find dl t)
        done;
        Alcotest.(check (option int)) "unknown term absent" None
          (Rdf.Dictionary.find dl (Rdf.Term.iri "no:such:term"));
        (* planner statistics: the store's precomputed seed answers must
           equal the heap store's scans *)
        Alcotest.(check int) "distinct subjects" (E.distinct_subjects enc)
          (E.distinct_subjects l);
        Alcotest.(check int) "distinct objects" (E.distinct_objects enc)
          (E.distinct_objects l);
        Alcotest.(check int) "distinct predicates"
          (E.distinct_predicates enc) (E.distinct_predicates l);
        for id = 0 to Rdf.Dictionary.size d - 1 do
          let a = E.predicate_stats enc id and b = E.predicate_stats l id in
          Alcotest.(check (triple int int int))
            "predicate stats"
            (a.E.triples, a.E.distinct_subjects, a.E.distinct_objects)
            (b.E.triples, b.E.distinct_subjects, b.E.distinct_objects)
        done;
        (* match_count probes across binding shapes *)
        for probe = 0 to 20 do
          let id k = (probe * 7 + k) mod max 1 (Rdf.Dictionary.size d) in
          let s = id 0 and p = id 1 and o = id 2 in
          Alcotest.(check int) "count ?s" (E.match_count enc ~s ())
            (E.match_count l ~s ());
          Alcotest.(check int) "count ?p" (E.match_count enc ~p ())
            (E.match_count l ~p ());
          Alcotest.(check int) "count ?so" (E.match_count enc ~s ~o ())
            (E.match_count l ~s ~o ());
          Alcotest.(check int) "count ?spo"
            (E.match_count enc ~s ~p ~o ())
            (E.match_count l ~s ~p ~o ())
        done;
        (* the graph handle forces the term-level decode lazily and must
           reproduce the source graph exactly *)
        let g2 = Storage.load_graph path in
        Alcotest.(check bool) "handle epoch negative" true
          (Rdf.Graph.epoch g2 < 0);
        Alcotest.(check bool) "decoded graph equal" true (Rdf.Graph.equal g g2))
  done

let test_empty_graph () =
  let enc = E.of_graph Rdf.Graph.empty in
  with_store_file enc (fun path ->
      let l = Storage.load ~verify:true path in
      Alcotest.(check int) "empty cardinal" 0 (E.cardinal l);
      Alcotest.(check int) "no predicates" 0 (E.distinct_predicates l);
      let g2 = Storage.load_graph path in
      Alcotest.(check bool) "empty graph equal" true
        (Rdf.Graph.equal Rdf.Graph.empty g2))

let test_identity_stable () =
  let g = graph_of 42 in
  with_store_file (E.of_graph g) (fun path ->
      let h1 = Storage.load_graph path in
      let h2 = Storage.load_graph path in
      Alcotest.(check int) "same file, same identity" (Rdf.Graph.epoch h1)
        (Rdf.Graph.epoch h2);
      let i = Storage.info path in
      Alcotest.(check int) "info agrees with the handles" i.Storage.identity
        (Rdf.Graph.epoch h1);
      Alcotest.(check bool) "disjoint from heap epochs" true
        (Rdf.Graph.epoch h1 < 0 && Rdf.Graph.epoch g > 0))

(* ------------------------------------------------------------------ *)
(* Differential evaluation: heap store vs mapped store                 *)
(* ------------------------------------------------------------------ *)

let solutions ?(domains = 1) ~optimize pattern graph =
  let plan = Wd_core.Engine.plan ~optimize pattern in
  Wd_core.Engine.solutions ~domains plan graph

let test_differential () =
  let cases = 200 in
  for seed = 1 to cases do
    let pattern =
      Workload.Query_families.random_wd_pattern ~seed ~triples:5 ~vars:5
        ~preds:2 ~depth:2 ~union:2
    in
    let g =
      Rdf.Generator.random_graph ~seed:((seed * 7) + 1) ~n:6
        ~predicates:[ "q0"; "q1" ] ~m:18
    in
    with_store_file (E.of_graph g) (fun path ->
        let h = Storage.load_graph path in
        List.iter
          (fun optimize ->
            let reference = solutions ~optimize pattern g in
            let mapped = solutions ~optimize pattern h in
            if not (Sparql.Mapping.Set.equal reference mapped) then
              Alcotest.failf "store evaluation differs at seed %d (%s): %s"
                seed
                (if optimize then "optimize on" else "optimize off")
                (Sparql.Printer.to_string pattern))
          [ true; false ];
        (* the naive evaluator goes through the handle's lazy term-level
           decode — exercise it on a sample of the cases *)
        if seed mod 20 = 0 then begin
          let forest = Wdpt.Pattern_forest.of_algebra pattern in
          let naive_ref = Wdpt.Semantics.solutions forest g in
          let naive_mapped = Wdpt.Semantics.solutions forest h in
          if not (Sparql.Mapping.Set.equal naive_ref naive_mapped) then
            Alcotest.failf "naive evaluation differs at seed %d" seed
        end)
  done

(* Cache eviction while a mapped store is in use, including on worker
   domains: dropping the registry must never invalidate a live
   evaluation, and a handle resolved after the drop falls back to its
   exact term-level decode. *)
let test_clear_cache_mid_life () =
  let g = graph_of 7 in
  let pattern =
    Workload.Query_families.random_wd_pattern ~seed:7 ~triples:4 ~vars:4
      ~preds:2 ~depth:2 ~union:1
  in
  with_store_file (E.of_graph g) (fun path ->
      let h = Storage.load_graph path in
      let reference = solutions ~optimize:true pattern g in
      let before = solutions ~domains:2 ~optimize:true pattern h in
      E.clear_cache ();
      Gc.full_major ();
      (* registry is gone: this resolution falls back to encoding the
         handle's decoded triples — answers must not change *)
      let after = solutions ~domains:2 ~optimize:true pattern h in
      (* a fresh load re-registers and must agree too *)
      let reloaded = solutions ~domains:2 ~optimize:true pattern
          (Storage.load_graph path)
      in
      Alcotest.(check bool) "before eviction" true
        (Sparql.Mapping.Set.equal reference before);
      Alcotest.(check bool) "after eviction (decode fallback)" true
        (Sparql.Mapping.Set.equal reference after);
      Alcotest.(check bool) "after reload" true
        (Sparql.Mapping.Set.equal reference reloaded))

(* ------------------------------------------------------------------ *)
(* Corruption fuzzing                                                  *)
(* ------------------------------------------------------------------ *)

let fault_of f =
  match f () with
  | _ -> None
  | exception Err.Error (Err.Store_error { fault; _ }) -> Some fault

(* Any exception escaping a load of a damaged file must be the
   structured error — nothing else. *)
let structured_only f =
  match f () with
  | _ -> true
  | exception Err.Error _ -> true
  | exception _ -> false

let pp_fault = Fmt.of_to_string (fun f -> Fmt.str "%a" Err.pp_store_fault f)
let fault_t = Alcotest.testable pp_fault ( = )

let test_truncation () =
  let g = graph_of 3 in
  with_store_file (E.of_graph g) (fun path ->
      let whole = read_file path in
      let size = String.length whole in
      let tmp = Filename.temp_file "wdsparql_trunc" ".wds" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          (* below the magic: the bytes still prefix a store magic, so
             this is a short file, not a foreign one — Truncated *)
          List.iter
            (fun len ->
              write_file tmp (String.sub whole 0 len);
              Alcotest.(check (option fault_t))
                (Printf.sprintf "truncated to %d bytes" len)
                (Some Err.Truncated)
                (fault_of (fun () -> Storage.load tmp)))
            [ 0; 4; 7 ];
          (* inside the header: Truncated *)
          List.iter
            (fun len ->
              write_file tmp (String.sub whole 0 len);
              Alcotest.(check (option fault_t))
                (Printf.sprintf "truncated to %d bytes" len)
                (Some Err.Truncated)
                (fault_of (fun () -> Storage.load tmp)))
            [ 8; 100; 255 ];
          (* inside the payload: a section extends past end-of-file *)
          List.iter
            (fun len ->
              write_file tmp (String.sub whole 0 len);
              Alcotest.(check (option fault_t))
                (Printf.sprintf "truncated to %d bytes" len)
                (Some Err.Truncated)
                (fault_of (fun () -> Storage.load tmp)))
            [ 256; 300; size / 2; size - 1 ]))

let test_bit_flips () =
  let g = graph_of 5 in
  with_store_file (E.of_graph g) (fun path ->
      let whole = read_file path in
      let size = String.length whole in
      let tmp = Filename.temp_file "wdsparql_flip" ".wds" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          let flip pos bit =
            let b = Bytes.of_string whole in
            Bytes.set b pos
              (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
            write_file tmp (Bytes.to_string b)
          in
          (* magic and version bytes: the precise fault *)
          flip 0 3;
          Alcotest.(check (option fault_t)) "flipped magic"
            (Some Err.Bad_magic)
            (fault_of (fun () -> Storage.load tmp));
          flip 8 0;
          (match fault_of (fun () -> Storage.load tmp) with
          | Some (Err.Version_mismatch _) -> ()
          | other ->
              Alcotest.failf "flipped version: expected Version_mismatch, got %s"
                (match other with
                | None -> "success"
                | Some f -> Fmt.str "%a" Err.pp_store_fault f));
          (* every header byte: a flip is either rejected with a
             structured fault or provably benign (a statistics hint) —
             never anything unstructured *)
          for pos = 0 to 255 do
            flip pos (pos mod 8);
            Alcotest.(check bool)
              (Printf.sprintf "header flip at %d is structured" pos)
              true
              (structured_only (fun () -> Storage.load ~verify:true tmp))
          done;
          (* payload flips under ~verify: always caught (checksum), save
             for flips the structural validation rejects first *)
          let step = max 1 (size / 64) in
          let pos = ref 256 in
          while !pos < size do
            flip !pos (!pos mod 8);
            (match fault_of (fun () -> Storage.load ~verify:true tmp) with
            | Some
                ( Err.Checksum_mismatch | Err.Corrupt | Err.Truncated ) ->
                ()
            | other ->
                Alcotest.failf
                  "payload flip at %d: expected a structured fault, got %s"
                  !pos
                  (match other with
                  | None -> "success"
                  | Some f -> Fmt.str "%a" Err.pp_store_fault f));
            (* without ~verify the load may succeed, but then using the
               store must stay structured: enumerate and decode it all *)
            Alcotest.(check bool)
              (Printf.sprintf "unverified use after flip at %d" !pos)
              true
              (structured_only (fun () ->
                   let enc = Storage.load tmp in
                   let d = E.dictionary enc in
                   E.iter_matching enc ~f:ignore ();
                   for id = 0 to Rdf.Dictionary.size d - 1 do
                     ignore (Rdf.Dictionary.term_of d id)
                   done;
                   ignore (E.distinct_subjects enc)));
            pos := !pos + step
          done))

(* The reader rejects a store claiming a future format version. *)
let test_version_gate () =
  let g = graph_of 11 in
  with_store_file (E.of_graph g) (fun path ->
      let whole = read_file path in
      let b = Bytes.of_string whole in
      Bytes.set_int64_le b 8 9L;
      let tmp = Filename.temp_file "wdsparql_ver" ".wds" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          write_file tmp (Bytes.to_string b);
          match fault_of (fun () -> Storage.load tmp) with
          | Some (Err.Version_mismatch { found = 9; expected = 2 }) -> ()
          | _ -> Alcotest.fail "expected Version_mismatch {found = 9}"))

(* In-bounds but overlapping sections must be rejected as Corrupt: the
   per-section bounds and length checks alone would admit them, and the
   aliased bytes would silently yield wrong answers. *)
let test_overlapping_sections () =
  let g = graph_of 7 in
  with_store_file (E.of_graph g) (fun path ->
      let whole = read_file path in
      let b = Bytes.of_string whole in
      (* The section table starts at byte 80, one (offset, length) pair of
         two 64-bit words per section. Point section 1 (term-sort) at
         section 0's offset: both sections stay inside the file and keep
         their expected lengths, so only the disjointness check fires. *)
      let sec0_off = Bytes.get_int64_le b 80 in
      Bytes.set_int64_le b (80 + 16) sec0_off;
      let tmp = Filename.temp_file "wdsparql_overlap" ".wds" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
        (fun () ->
          write_file tmp (Bytes.to_string b);
          Alcotest.(check (option fault_t))
            "overlapping sections rejected" (Some Err.Corrupt)
            (fault_of (fun () -> Storage.load tmp))))

(* Regression: view-backed dictionaries memoize decodes and reverse
   lookups on the read path, so concurrent access from worker domains
   must be serialized — unsynchronized Hashtbl mutation can lose
   entries, answer wrongly, or loop. Hammer one loaded store's
   dictionary from several domains at once, staggered so first-decode
   collisions on the shared memo are likely, and check every answer. *)
let test_parallel_dictionary () =
  let g = graph_of 23 in
  let enc = E.of_graph g in
  with_store_file enc (fun path ->
      let l = Storage.load path in
      let dl = E.dictionary l in
      let d = E.dictionary enc in
      let n = Rdf.Dictionary.size d in
      let expected = Array.init n (Rdf.Dictionary.term_of d) in
      let worker k () =
        let ok = ref true in
        for round = 1 to 3 do
          ignore round;
          for i = 0 to n - 1 do
            let id = (i + (k * n / 4)) mod n in
            let t = Rdf.Dictionary.term_of dl id in
            ok :=
              !ok
              && Rdf.Term.equal t expected.(id)
              && Rdf.Dictionary.find dl t = Some id
          done
        done;
        !ok
      in
      let domains = List.init 4 (fun k -> Domain.spawn (worker k)) in
      List.iter
        (fun dom ->
          Alcotest.(check bool) "parallel decode agrees" true
            (Domain.join dom))
        domains)

let test_not_a_store () =
  let tmp = Filename.temp_file "wdsparql_notastore" ".ttl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      write_file tmp "<a:s> <a:p> <a:o> .\n";
      Alcotest.(check (option fault_t)) "turtle file is not a store"
        (Some Err.Bad_magic)
        (fault_of (fun () -> Storage.load tmp));
      Alcotest.(check bool) "sniff rejects it" false
        (Storage.looks_like_store tmp));
  Alcotest.(check bool) "sniff tolerates a missing file" false
    (Storage.looks_like_store "/no/such/file.wds");
  match Storage.load "/no/such/file.wds" with
  | _ -> Alcotest.fail "missing file must not load"
  | exception Err.Error (Err.Io_error _) -> ()
  | exception _ -> Alcotest.fail "missing file must raise Io_error"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "persist"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "25 random graphs round-trip" `Quick
            test_roundtrip;
          Alcotest.test_case "empty graph round-trips" `Quick
            test_empty_graph;
          Alcotest.test_case "identity stable across loads" `Quick
            test_identity_stable;
        ] );
      ( "differential",
        [
          Alcotest.test_case "200 cases: mapped = heap (optimize on/off)"
            `Quick test_differential;
          Alcotest.test_case "cache eviction mid-life (domains=2)" `Quick
            test_clear_cache_mid_life;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "truncation at every layer" `Quick
            test_truncation;
          Alcotest.test_case "bit flips: header and payload" `Quick
            test_bit_flips;
          Alcotest.test_case "future version rejected" `Quick
            test_version_gate;
          Alcotest.test_case "overlapping sections rejected" `Quick
            test_overlapping_sections;
          Alcotest.test_case "non-store inputs rejected" `Quick
            test_not_a_store;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "dictionary decode from 4 domains" `Quick
            test_parallel_dictionary;
        ] );
    ]
