(* PR 3: plan-level caching across evaluations. The contract under test:
   repeated [Engine.solutions] calls on one plan reuse compiled hom
   sources and pebble games; mutating the graph (a new store, hence a new
   epoch) invalidates and recompiles without changing answers; and the
   size-capped verdict LRU only ever trades memory for recomputation,
   never answers. *)

open Rdf
module Engine = Wd_core.Engine
module Plan_cache = Wd_core.Plan_cache

let check = Alcotest.check

let set_equal = Sparql.Mapping.Set.equal

let pattern =
  Sparql.Parser.parse_exn "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }"

let graph = Generator.social ~seed:5 ~people:30

let reference g = Sparql.Eval.eval pattern g

(* ------------------------------------------------------------------ *)
(* Epoch stamps                                                        *)
(* ------------------------------------------------------------------ *)

let test_epochs () =
  let t =
    Triple.make (Term.iri "n:a") (Term.iri "p:knows") (Term.iri "n:b")
  in
  let g1 = Graph.of_triples [ t ] and g2 = Graph.of_triples [ t ] in
  check Alcotest.bool "structurally equal graphs" true (Graph.equal g1 g2);
  check Alcotest.bool "distinct stores get distinct epochs" true
    (Graph.epoch g1 <> Graph.epoch g2);
  check Alcotest.bool "union is a new store" true
    (Graph.epoch (Graph.union g1 g2) <> Graph.epoch g1);
  check Alcotest.int "encoded copy carries the source epoch"
    (Graph.epoch g1)
    (Encoded.Encoded_graph.epoch (Encoded.Encoded_graph.of_graph g1))

(* ------------------------------------------------------------------ *)
(* Warm reuse on an unchanged graph                                    *)
(* ------------------------------------------------------------------ *)

(* These counter assertions pin the pebble path explicitly: with the
   cost-based optimizer on, tiny nodes run their maximality tests as
   naive backtracking checks and never touch the verdict memo — which
   is the point of the optimizer, but not what this suite tests. *)
let test_warm_reuse () =
  let plan = Engine.plan ~optimize:false pattern in
  let a1, s1 = Engine.solutions_stats plan graph in
  let s1 = Option.get s1 in
  let a2, s2 = Engine.solutions_stats plan graph in
  let s2 = Option.get s2 in
  check Alcotest.bool "both runs match the reference" true
    (set_equal a1 (reference graph) && set_equal a2 a1);
  check Alcotest.int "no invalidation" 0 s2.Plan_cache.invalidations;
  check Alcotest.int "hom sources compiled once, reused warm"
    s1.Plan_cache.hom_sources s2.Plan_cache.hom_sources;
  check Alcotest.int "pebble games compiled once, reused warm"
    s1.Plan_cache.pebble.Wd_core.Pebble_cache.compiled
    s2.Plan_cache.pebble.Wd_core.Pebble_cache.compiled;
  check Alcotest.bool "warm run hits the verdict memo" true
    (s2.Plan_cache.pebble.Wd_core.Pebble_cache.hits
    > s1.Plan_cache.pebble.Wd_core.Pebble_cache.hits)

(* ------------------------------------------------------------------ *)
(* Epoch invalidation on mutation                                      *)
(* ------------------------------------------------------------------ *)

let test_epoch_invalidation () =
  let plan = Engine.plan ~optimize:false pattern in
  let a1, s1 = Engine.solutions_stats plan graph in
  let s1 = Option.get s1 in
  check Alcotest.bool "first run matches the reference" true
    (set_equal a1 (reference graph));
  (* "mutate" the graph: immutable stores make every mutation a new
     store with a fresh epoch *)
  let g2 =
    Graph.union graph
      (Graph.of_triples
         [
           Triple.make (Term.iri "n:fresh") (Term.iri "p:knows")
             (Term.iri "n:person0");
         ])
  in
  let a2, s2 = Engine.solutions_stats plan g2 in
  let s2 = Option.get s2 in
  check Alcotest.bool "answers track the mutated graph" true
    (set_equal a2 (reference g2));
  check Alcotest.int "stats report the invalidation" 1
    s2.Plan_cache.invalidations;
  check Alcotest.bool "sources were recompiled for the new store" true
    (s2.Plan_cache.hom_sources > s1.Plan_cache.hom_sources);
  check Alcotest.bool "games were recompiled for the new store" true
    (s2.Plan_cache.pebble.Wd_core.Pebble_cache.compiled
    > s1.Plan_cache.pebble.Wd_core.Pebble_cache.compiled);
  (* steady again on the new store *)
  let a3, s3 = Engine.solutions_stats plan g2 in
  let s3 = Option.get s3 in
  check Alcotest.bool "re-run on the new store agrees" true (set_equal a3 a2);
  check Alcotest.int "no further invalidation" 1 s3.Plan_cache.invalidations;
  check Alcotest.int "no further compilation"
    s2.Plan_cache.hom_sources s3.Plan_cache.hom_sources;
  (* membership checks share the plan cache and survive the swap too *)
  Sparql.Mapping.Set.iter
    (fun mu ->
      check Alcotest.bool "check agrees on the new store" true
        (Engine.check plan g2 mu))
    a2

(* ------------------------------------------------------------------ *)
(* Multi-store MRU (PR 4)                                              *)
(* ------------------------------------------------------------------ *)

let run_on plan g =
  let a, s = Engine.solutions_stats plan g in
  check Alcotest.bool "answers match the reference" true
    (set_equal a (reference g));
  Option.get s

let test_mru_two_stores () =
  let plan = Engine.plan ~optimize:false pattern in
  let g1 = graph and g2 = Generator.social ~seed:11 ~people:25 in
  let _ = run_on plan g1 in
  let s2 = run_on plan g2 in
  check Alcotest.int "switching stores builds a second entry" 1
    s2.Plan_cache.invalidations;
  (* alternating between two live stores rebuilds nothing: each run is a
     front-of-list bump, not a recompile *)
  let s = ref s2 in
  for _ = 1 to 3 do
    s := run_on plan g1;
    s := run_on plan g2
  done;
  check Alcotest.int "alternation never rebuilds" 1
    !s.Plan_cache.invalidations;
  check Alcotest.int "no eviction under the default capacity" 0
    !s.Plan_cache.plan_evictions;
  check Alcotest.int "both stores stay cached" 2 !s.Plan_cache.live_entries;
  check Alcotest.int "no games recompiled while alternating"
    s2.Plan_cache.pebble.Wd_core.Pebble_cache.compiled
    !s.Plan_cache.pebble.Wd_core.Pebble_cache.compiled

let test_plan_capacity_eviction () =
  let plan = Engine.plan ~optimize:false ~plan_capacity:1 pattern in
  let g1 = graph and g2 = Generator.social ~seed:11 ~people:25 in
  let _ = run_on plan g1 in
  let s2 = run_on plan g2 in
  let s3 = run_on plan g1 in
  check Alcotest.int "every switch rebuilds at capacity 1" 2
    s3.Plan_cache.invalidations;
  check Alcotest.int "each rebuild evicted the previous store" 2
    s3.Plan_cache.plan_evictions;
  check Alcotest.int "one live entry" 1 s3.Plan_cache.live_entries;
  (* counters from the evicted entries are retired, not lost: the third
     build adds to a total that still includes the first two *)
  check Alcotest.bool "retired compile counts accumulate" true
    (s3.Plan_cache.pebble.Wd_core.Pebble_cache.compiled
    > s2.Plan_cache.pebble.Wd_core.Pebble_cache.compiled)

(* ------------------------------------------------------------------ *)
(* Shared unary base domains (PR 4)                                    *)
(* ------------------------------------------------------------------ *)

let test_unary_sharing () =
  let iri = Term.iri in
  let knows a b = Triple.make (iri a) (iri "p:knows") (iri b) in
  let active a = Triple.make (iri a) (iri "p:active") (iri "p:yes") in
  let g =
    Graph.of_triples
      [
        knows "n:a" "n:b"; knows "n:b" "n:c"; knows "n:a" "n:c";
        knows "n:c" "n:d"; active "n:b"; active "n:c";
      ]
  in
  (* both OPTIONAL children contain the same µ-independent unary triple
     pattern (?_ p:active p:yes); its base domain is scanned once and
     reused when the second child's game family is compiled *)
  let p =
    Sparql.Parser.parse_exn
      "{ ?a p:knows ?b . OPTIONAL { ?a p:knows ?y . ?y p:active p:yes } \
       OPTIONAL { ?b p:knows ?z . ?z p:active p:yes } }"
  in
  let plan = Engine.plan ~optimize:false p in
  let answers, s = Engine.solutions_stats plan g in
  let s = Option.get s in
  check Alcotest.bool "answers match the reference" true
    (set_equal answers (Sparql.Eval.eval p g));
  let pb = s.Plan_cache.pebble in
  check Alcotest.bool "some unary domains were scanned" true
    (pb.Wd_core.Pebble_cache.unary_misses > 0);
  check Alcotest.bool "the two children's games share unary scans" true
    (pb.Wd_core.Pebble_cache.unary_hits > 0)

(* ------------------------------------------------------------------ *)
(* Retired counters across eviction churn (PR 6)                       *)
(* ------------------------------------------------------------------ *)

module Pebble_cache = Wd_core.Pebble_cache
module Pool = Parallel.Pool

(* A (tree, subtree, child, candidate mappings) quadruple for driving
   Pebble_cache.child_test directly: the root of the test pattern with
   its OPTIONAL child, and every µ matching the root in [g]. *)
let child_test_setup g =
  let tree = List.hd (Wdpt.Pattern_forest.of_algebra pattern) in
  let sub = Wdpt.Subtree.root_only tree in
  let child = List.hd (Wdpt.Subtree.children sub) in
  let root_only = Sparql.Parser.parse_exn "{ ?a p:knows ?b }" in
  let mus = Sparql.Mapping.Set.elements (Sparql.Eval.eval root_only g) in
  (tree, sub, child, mus)

(* Worker-view counters pending at eviction time (a server thread
   mid-evaluation when another store pushes the entry out) must be
   absorbed into the retired accumulator, not dropped with the entry. *)
let test_eviction_absorbs_worker_views () =
  let cache = Plan_cache.create ~plan_capacity:1 () in
  let g1 = graph and g2 = Generator.social ~seed:11 ~people:25 in
  let pc = Plan_cache.pebble cache g1 in
  let tree, sub, child, mus = child_test_setup g1 in
  let view = Pebble_cache.worker_view_for pc 1 in
  ignore (Pebble_cache.child_test view ~k:2 tree (List.hd mus) sub child);
  let before = (Plan_cache.stats cache).Plan_cache.pebble in
  (* evicting g1's entry by touching a second store at capacity 1 *)
  ignore (Plan_cache.pebble cache g2);
  let after = Plan_cache.stats cache in
  check Alcotest.int "one eviction" 1 after.Plan_cache.plan_evictions;
  check Alcotest.int "the un-absorbed worker lookup survives eviction" 1
    (after.Plan_cache.pebble.Pebble_cache.hits
    + after.Plan_cache.pebble.Pebble_cache.misses);
  check Alcotest.bool "totals never dip across the eviction" true
    (after.Plan_cache.pebble.Pebble_cache.hits >= before.Pebble_cache.hits
    && after.Plan_cache.pebble.Pebble_cache.misses
       >= before.Pebble_cache.misses
    && after.Plan_cache.pebble.Pebble_cache.compiled
       >= before.Pebble_cache.compiled)

(* Reconciliation under churn: the same evaluation sequence, with and
   without eviction pressure, accounts for exactly the same number of
   verdict lookups — eviction may force recompilation, never lose
   counters — and every total is monotone run over run. *)
let test_retired_reconcile_churn () =
  let g1 = graph and g2 = Generator.social ~seed:11 ~people:25 in
  let churn = Engine.plan ~optimize:false ~plan_capacity:1 pattern in
  let roomy = Engine.plan ~optimize:false pattern in
  let lookups s =
    s.Plan_cache.pebble.Pebble_cache.hits
    + s.Plan_cache.pebble.Pebble_cache.misses
  in
  let last = ref 0 in
  let run plan g =
    let a, s = Engine.solutions_stats ~domains:2 plan g in
    check Alcotest.bool "answers match the reference" true
      (set_equal a (reference g));
    Option.get s
  in
  let final_churn = ref None and final_roomy = ref None in
  for i = 1 to 3 do
    ignore i;
    let sc = run churn g1 in
    check Alcotest.bool "lookup total is monotone across churn" true
      (lookups sc >= !last);
    last := lookups sc;
    let sc = run churn g2 in
    check Alcotest.bool "lookup total is monotone across churn" true
      (lookups sc >= !last);
    last := lookups sc;
    final_churn := Some sc;
    ignore (run roomy g1);
    final_roomy := Some (run roomy g2)
  done;
  let sc = Option.get !final_churn and sr = Option.get !final_roomy in
  check Alcotest.int
    "evicting and non-evicting plans account the same lookups"
    (lookups sr) (lookups sc);
  check Alcotest.bool "churn recompiles, reconciled in retired totals" true
    (sc.Plan_cache.pebble.Pebble_cache.compiled
    >= sr.Plan_cache.pebble.Pebble_cache.compiled);
  check Alcotest.int "capacity 1 evicted on every switch" 5
    sc.Plan_cache.plan_evictions

(* ------------------------------------------------------------------ *)
(* absorb_views under a worker crash (PR 6)                            *)
(* ------------------------------------------------------------------ *)

(* A worker raising mid-batch must not lose or double-count merged
   stats: the pool quiesces every chunk before re-raising, so the
   absorb that follows sees exactly the completed tests. *)
let test_absorb_views_worker_crash () =
  let pc = Pebble_cache.create graph in
  let tree, sub, child, mus = child_test_setup graph in
  check Alcotest.bool "enough candidates to spread over workers" true
    (List.length mus >= 16);
  let items = List.mapi (fun i mu -> (i, mu)) mus in
  let completed = Atomic.make 0 in
  Pool.with_pool ~domains:4 @@ fun pool ->
  (match
     Pool.map_stream pool
       ~init:(fun slot -> Pebble_cache.worker_view_for pc slot)
       ~f:(fun view (i, mu) ->
         if i = 7 then failwith "crash";
         let r = Pebble_cache.child_test view ~k:2 tree mu sub child in
         Atomic.incr completed;
         r)
       items
   with
  | _ -> Alcotest.fail "the worker's exception was swallowed"
  | exception Failure msg -> check Alcotest.string "crash" "crash" msg);
  Pebble_cache.absorb_views pc;
  let s = Pebble_cache.stats pc in
  check Alcotest.int "absorbed lookups = completed tests (none lost)"
    (Atomic.get completed)
    (s.Pebble_cache.hits + s.Pebble_cache.misses);
  (* absorb zeroes the views: running it again must add nothing *)
  Pebble_cache.absorb_views pc;
  let s2 = Pebble_cache.stats pc in
  check Alcotest.int "re-absorbing double-counts nothing"
    (s.Pebble_cache.hits + s.Pebble_cache.misses)
    (s2.Pebble_cache.hits + s2.Pebble_cache.misses)

(* ------------------------------------------------------------------ *)
(* Verdict LRU                                                         *)
(* ------------------------------------------------------------------ *)

let test_verdict_lru () =
  let capped = Engine.plan ~optimize:false ~verdict_capacity:1 pattern in
  let uncapped = Engine.plan ~optimize:false pattern in
  let ac, sc = Engine.solutions_stats capped graph in
  let au, su = Engine.solutions_stats uncapped graph in
  let sc = Option.get sc and su = Option.get su in
  check Alcotest.bool "capped answers = uncapped answers" true
    (set_equal ac au);
  check Alcotest.bool "capped answers = reference" true
    (set_equal ac (reference graph));
  check Alcotest.bool "a capacity of 1 must evict" true
    (sc.Plan_cache.pebble.Wd_core.Pebble_cache.evictions > 0);
  check Alcotest.int "the generous default evicts nothing" 0
    su.Plan_cache.pebble.Wd_core.Pebble_cache.evictions;
  (* the cap trades memo hits for recomputation, nothing else *)
  check Alcotest.bool "capped run recomputes more" true
    (sc.Plan_cache.pebble.Wd_core.Pebble_cache.misses
    >= su.Plan_cache.pebble.Wd_core.Pebble_cache.misses)

let () =
  Alcotest.run "plan_cache"
    [
      ("epochs", [ Alcotest.test_case "stamps" `Quick test_epochs ]);
      ( "reuse",
        [
          Alcotest.test_case "warm reuse" `Quick test_warm_reuse;
          Alcotest.test_case "epoch invalidation" `Quick
            test_epoch_invalidation;
        ] );
      ( "mru",
        [
          Alcotest.test_case "two stores alternate warm" `Quick
            test_mru_two_stores;
          Alcotest.test_case "capacity 1 evicts" `Quick
            test_plan_capacity_eviction;
        ] );
      ( "unary",
        [
          Alcotest.test_case "base domains shared across families" `Quick
            test_unary_sharing;
        ] );
      ( "retired",
        [
          Alcotest.test_case "eviction absorbs worker views" `Quick
            test_eviction_absorbs_worker_views;
          Alcotest.test_case "churn reconciles with no-churn" `Quick
            test_retired_reconcile_churn;
        ] );
      ( "crash",
        [
          Alcotest.test_case "absorb_views after worker crash" `Quick
            test_absorb_views_worker_crash;
        ] );
      ("lru", [ Alcotest.test_case "verdict eviction" `Quick test_verdict_lru ]);
    ]
