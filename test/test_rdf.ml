open Rdf

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Iri / Variable / Term                                               *)
(* ------------------------------------------------------------------ *)

let test_iri_basics () =
  let i = Iri.of_string "http://example.org/a" in
  check Alcotest.string "roundtrip" "http://example.org/a" (Iri.to_string i);
  check Alcotest.bool "equal" true (Iri.equal i (Iri.of_string "http://example.org/a"));
  check Alcotest.bool "not equal" false (Iri.equal i (Iri.of_string "p:b"));
  Alcotest.check_raises "empty rejected" (Invalid_argument "Iri.of_string: empty IRI")
    (fun () -> ignore (Iri.of_string ""))

let test_iri_pp () =
  check Alcotest.string "prefixed printed bare" "p:knows"
    (Fmt.str "%a" Iri.pp (Iri.of_string "p:knows"));
  check Alcotest.string "full IRI in angles" "<http://example.org/a>"
    (Fmt.str "%a" Iri.pp (Iri.of_string "http://example.org/a"))

let test_variable_basics () =
  check Alcotest.string "leading ? stripped" "x"
    (Variable.to_string (Variable.of_string "?x"));
  check Alcotest.bool "same var" true
    (Variable.equal (Variable.of_string "?x") (Variable.of_string "x"));
  check Alcotest.string "pp adds ?" "?x" (Fmt.str "%a" Variable.pp (Variable.of_string "x"))

let test_variable_fresh () =
  let taken = [ "z"; "z_1"; "z_2" ] in
  let fresh = Variable.fresh ~basis:(Variable.of_string "z")
      ~avoid:(fun v -> List.mem (Variable.to_string v) taken)
  in
  check Alcotest.string "skips taken names" "z_3" (Variable.to_string fresh);
  let free = Variable.fresh ~basis:(Variable.of_string "w") ~avoid:(fun _ -> false) in
  check Alcotest.string "basis reused when free" "w" (Variable.to_string free)

let test_term () =
  check Alcotest.bool "var is var" true (Term.is_var (Term.var "x"));
  check Alcotest.bool "iri is not var" false (Term.is_var (Term.iri "p:a"));
  check Alcotest.bool "iri < var in order" true (Term.compare (Term.iri "p:a") (Term.var "a") < 0);
  check Alcotest.(option string) "as_var" (Some "x")
    (Option.map Variable.to_string (Term.as_var (Term.var "x")))

(* ------------------------------------------------------------------ *)
(* Triple                                                              *)
(* ------------------------------------------------------------------ *)

let t_xy = Triple.make (Term.var "x") (Term.iri "p:p") (Term.var "y")
let t_ground = Triple.make (Term.iri "n:a") (Term.iri "p:p") (Term.iri "n:b")

let test_triple_vars () =
  check Alcotest.(list string) "vars of pattern" [ "x"; "y" ]
    (List.map Variable.to_string (Variable.Set.elements (Triple.vars t_xy)));
  check Alcotest.bool "ground" true (Triple.is_ground t_ground);
  check Alcotest.bool "non-ground" false (Triple.is_ground t_xy)

let test_triple_subst () =
  let s =
    Triple.subst
      (fun v -> if Variable.to_string v = "x" then Some (Term.iri "n:a") else None)
      t_xy
  in
  check Testutil.triple "x replaced" (Triple.make (Term.iri "n:a") (Term.iri "p:p") (Term.var "y")) s

(* ------------------------------------------------------------------ *)
(* Index                                                               *)
(* ------------------------------------------------------------------ *)

let sample_index () =
  Index.of_triples
    [
      Triple.make (Term.iri "n:a") (Term.iri "p:p") (Term.iri "n:b");
      Triple.make (Term.iri "n:a") (Term.iri "p:p") (Term.iri "n:c");
      Triple.make (Term.iri "n:b") (Term.iri "p:q") (Term.iri "n:c");
      Triple.make (Term.var "z") (Term.iri "p:q") (Term.iri "n:c");
    ]

let test_index_matching () =
  let idx = sample_index () in
  let count ?s ?p ?o () = List.length (Index.matching idx ?s ?p ?o ()) in
  check Alcotest.int "all" 4 (count ());
  check Alcotest.int "by subject" 2 (count ~s:(Term.iri "n:a") ());
  check Alcotest.int "by predicate" 2 (count ~p:(Term.iri "p:q") ());
  check Alcotest.int "by object" 3 (count ~o:(Term.iri "n:c") ());
  check Alcotest.int "s+p" 2 (count ~s:(Term.iri "n:a") ~p:(Term.iri "p:p") ());
  check Alcotest.int "p+o" 2 (count ~p:(Term.iri "p:q") ~o:(Term.iri "n:c") ());
  check Alcotest.int "s+o" 1 (count ~s:(Term.iri "n:a") ~o:(Term.iri "n:b") ());
  check Alcotest.int "full triple hit" 1
    (count ~s:(Term.iri "n:b") ~p:(Term.iri "p:q") ~o:(Term.iri "n:c") ());
  check Alcotest.int "full triple miss" 0
    (count ~s:(Term.iri "n:b") ~p:(Term.iri "p:p") ~o:(Term.iri "n:c") ());
  (* frozen variable matches only itself *)
  check Alcotest.int "frozen var as subject" 1 (count ~s:(Term.var "z") ())

let test_index_match_count_agrees () =
  let idx = sample_index () in
  let checkpair ?s ?p ?o () =
    check Alcotest.int "count = |matching|"
      (List.length (Index.matching idx ?s ?p ?o ()))
      (Index.match_count idx ?s ?p ?o ())
  in
  checkpair ();
  checkpair ~s:(Term.iri "n:a") ();
  checkpair ~p:(Term.iri "p:p") ();
  checkpair ~s:(Term.iri "n:a") ~p:(Term.iri "p:p") ~o:(Term.iri "n:b") ()

let test_index_sets () =
  let idx = sample_index () in
  check Alcotest.int "terms" 6 (Term.Set.cardinal (Index.terms idx));
  check Alcotest.int "vars" 1 (Variable.Set.cardinal (Index.vars idx));
  check Alcotest.int "iris" 5 (Iri.Set.cardinal (Index.iris idx));
  check Alcotest.int "cardinal" 4 (Index.cardinal idx);
  let fresh = Triple.make (Term.iri "n:d") (Term.iri "p:p") (Term.iri "n:e") in
  let union = Index.union idx (Index.of_triples [ fresh; t_ground ]) in
  (* t_ground = (n:a, p:p, n:b) is already present, so only [fresh] adds *)
  check Alcotest.int "union dedups" 5 (Index.cardinal union)

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let test_graph_groundness () =
  (match Graph.of_triples [ t_xy ] with
  | exception Graph.Not_ground t ->
      check Testutil.triple "offending triple reported" t_xy t
  | _ -> Alcotest.fail "expected Not_ground");
  let g = Graph.of_triples [ t_ground ] in
  check Alcotest.int "dom" 3 (Iri.Set.cardinal (Graph.dom g))

(* ------------------------------------------------------------------ *)
(* Turtle                                                              *)
(* ------------------------------------------------------------------ *)

let test_turtle_parse () =
  let src =
    {|@prefix ex: <http://example.org/> .
# a comment
ex:a ex:knows ex:b .
<http://example.org/b> ex:knows ex:c .
p:raw p:q p:raw2 .|}
  in
  match Turtle.parse_graph src with
  | Error e -> Alcotest.fail e
  | Ok g ->
      check Alcotest.int "three triples" 3 (Graph.cardinal g);
      check Alcotest.bool "prefix expansion matches explicit IRI" true
        (Graph.mem g
           (Triple.make
              (Term.iri "http://example.org/b")
              (Term.iri "http://example.org/knows")
              (Term.iri "http://example.org/c")))

let test_turtle_variables () =
  (match Turtle.parse_triples "?x p:q n:a ." with
  | Ok [ t ] -> check Alcotest.bool "variable accepted" false (Triple.is_ground t)
  | Ok _ -> Alcotest.fail "expected one triple"
  | Error e -> Alcotest.fail e);
  match Turtle.parse_graph "?x p:q n:a ." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "graph parse must reject variables"

let test_turtle_errors () =
  let bad src =
    match Turtle.parse_graph src with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
  in
  bad "<unterminated p:q n:a .";
  bad "p:a p:b .";
  (* missing object *)
  bad "@prefix broken <http://x/> .";
  bad "p:a p:b p:c"
(* missing final dot *)

(* Table-driven malformed input: every case must come back as a structured
   [Parse_error] carrying the expected position — never an exception. *)
let test_turtle_malformed_table () =
  let cases =
    [
      (* src, expected line, expected column *)
      ("<unterminated p:q n:a .", 1, 1);
      ("<> p:q n:a .", 1, 1);
      (* empty IRI used to crash with Invalid_argument *)
      ("p:a p:b .", 1, 9);
      ("@prefix broken <http://x/> .", 1, 9);
      ("@nonsense p: <http://x/> .", 1, 1);
      ("p:a p:b p:c", 1, 1);
      ("p:a p:b \"unterminated", 1, 9);
      ("p:a !! p:c .", 1, 5);
      ("p:a ? p:c .", 1, 5);
      ("p:a p:b p:c .\np:a p:b .", 2, 9);
      ("p:a p:b p:c .\n\n  justaword p:b p:c .", 3, 3);
    ]
  in
  List.iter
    (fun (src, line, col) ->
      match Turtle.parse_graph_err src with
      | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
      | Error (Wdsparql_error.Parse_error e) ->
          check Alcotest.int ("line of " ^ src) line e.line;
          check Alcotest.int ("col of " ^ src) col e.col
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "expected Parse_error for %s, got: %s" src
               (Wdsparql_error.to_string e)))
    cases;
  (* non-ground data is an Invalid_input, not a parse error *)
  match Turtle.parse_graph_err "?x p:q n:a ." with
  | Error (Wdsparql_error.Invalid_input _) -> ()
  | Error e ->
      Alcotest.fail ("expected Invalid_input, got " ^ Wdsparql_error.to_string e)
  | Ok _ -> Alcotest.fail "graph parse must reject variables"

let test_ntriples_malformed_table () =
  let cases =
    [
      ("<a> <b> <c>", 1, 12);
      (* missing dot *)
      ("<a> <b> .", 1, 9);
      (* missing object *)
      ("<a> <b> <c> . trailing", 1, 15);
      ("<a> <b> <unterminated .", 1, 9);
      ("<a> <b> <> .", 1, 9);
      ("plain <b> <c> .", 1, 1);
      ("<a> <b> <c> .\n<a> <b> \"unterminated", 2, 9);
    ]
  in
  List.iter
    (fun (src, line, col) ->
      match Ntriples.parse_err src with
      | Ok _ -> Alcotest.fail ("should not parse: " ^ src)
      | Error (Wdsparql_error.Parse_error e) ->
          check Alcotest.int ("line of " ^ src) line e.line;
          check Alcotest.int ("col of " ^ src) col e.col
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "expected Parse_error for %s, got: %s" src
               (Wdsparql_error.to_string e)))
    cases

let test_turtle_roundtrip () =
  let g = Generator.social ~seed:3 ~people:15 in
  let s = Turtle.to_string g in
  match Turtle.parse_graph s with
  | Error e -> Alcotest.fail e
  | Ok g' -> check Testutil.graph "roundtrip" g g'

(* ------------------------------------------------------------------ *)
(* Literals                                                            *)
(* ------------------------------------------------------------------ *)

let test_literal_encode_decode () =
  let cases =
    [
      Literal.plain "hello";
      Literal.plain "";
      Literal.plain "with \"quotes\" and \\backslash\\";
      Literal.plain "line\nbreak\ttab";
      Literal.plain "special @ ^ % chars";
      Literal.lang_tagged "chat" "fr";
      Literal.lang_tagged "colour" "en-GB";
      Literal.typed "5" (Iri.of_string "http://www.w3.org/2001/XMLSchema#integer");
      Literal.typed "x@y^z" (Iri.of_string "urn:custom");
    ]
  in
  List.iter
    (fun literal ->
      let encoded = Literal.encode literal in
      check Alcotest.bool "recognised" true (Literal.is_encoded encoded);
      match Literal.decode encoded with
      | Some back ->
          check Alcotest.bool
            (Fmt.str "roundtrip %a" Literal.pp literal)
            true (Literal.equal literal back)
      | None -> Alcotest.fail "decode failed")
    cases;
  check Alcotest.bool "plain IRIs do not decode" true
    (Literal.decode (Iri.of_string "http://example.org/") = None);
  (* injectivity on a tricky cluster *)
  let encodings =
    List.map Literal.encode
      [
        Literal.plain "a@en";
        Literal.lang_tagged "a" "en";
        Literal.plain "a";
        Literal.typed "a" (Iri.of_string "urn:en");
      ]
  in
  check Alcotest.int "injective" 4
    (List.length (List.sort_uniq Iri.compare encodings))

let literal_roundtrip_random =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:200 ~name:"literal encode/decode roundtrip"
       QCheck.(string_of_size (QCheck.Gen.int_bound 30))
       (fun value ->
         let literal = Literal.plain value in
         match Literal.decode (Literal.encode literal) with
         | Some back -> Literal.equal literal back
         | None -> false))

let test_literal_scan () =
  let ok src expected =
    match Literal.scan src 0 with
    | Ok (l, _) -> check Alcotest.bool src true (Literal.equal l expected)
    | Error e -> Alcotest.failf "%s: %s" src e
  in
  ok {|"abc"|} (Literal.plain "abc");
  ok {|"a\"b"|} (Literal.plain {|a"b|});
  ok {|"x"@en|} (Literal.lang_tagged "x" "en");
  ok {|"5"^^<urn:int>|} (Literal.typed "5" (Iri.of_string "urn:int"));
  let bad src =
    match Literal.scan src 0 with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not scan: %s" src
  in
  bad {|"unterminated|};
  bad {|"x"@|};
  bad {|"x"^^urn:int|};
  bad {|"x"^^<unclosed|}

let test_literal_turtle_end_to_end () =
  let src =
    {|person:ann p:name "Ann \"the\" Analyst" .
person:ann p:age "41"^^<http://www.w3.org/2001/XMLSchema#integer> .
person:ann p:motto "salut"@fr .|}
  in
  match Turtle.parse_graph src with
  | Error e -> Alcotest.fail e
  | Ok g ->
      check Alcotest.int "three triples" 3 (Graph.cardinal g);
      (* serialise and reparse: identical graph *)
      (match Turtle.parse_graph (Turtle.to_string g) with
      | Ok g' -> check Testutil.graph "turtle roundtrip with literals" g g'
      | Error e -> Alcotest.fail e);
      (* N-Triples too *)
      (match Ntriples.parse (Ntriples.to_string g) with
      | Ok g' -> check Testutil.graph "ntriples roundtrip with literals" g g'
      | Error e -> Alcotest.fail e);
      (* and a query with a literal constant finds the right person *)
      let p = Sparql.Parser.parse_exn {|{ ?who p:motto "salut"@fr }|} in
      let sols = Sparql.Eval.eval p g in
      check Alcotest.int "literal constant matches" 1
        (Sparql.Mapping.Set.cardinal sols);
      let p2 = Sparql.Parser.parse_exn {|{ ?who p:motto "salut"@de }|} in
      check Alcotest.int "wrong language tag does not" 0
        (Sparql.Mapping.Set.cardinal (Sparql.Eval.eval p2 g))

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let test_generator_shapes () =
  check Alcotest.int "path edges" 9 (Graph.cardinal (Generator.path ~n:10 ~pred:"p"));
  check Alcotest.int "cycle edges" 10 (Graph.cardinal (Generator.cycle ~n:10 ~pred:"p"));
  check Alcotest.int "grid edges" 12
    (Graph.cardinal (Generator.grid ~rows:3 ~cols:3 ~pred:"p"));
  check Alcotest.int "star edges" 5 (Graph.cardinal (Generator.star ~n:5 ~pred:"p"));
  check Alcotest.int "tournament edges" 10
    (Graph.cardinal (Generator.transitive_tournament ~n:5 ~pred:"r"))

let test_generator_random () =
  let g = Generator.random_digraph ~seed:1 ~n:10 ~m:20 ~pred:"r" in
  check Alcotest.int "edge count" 20 (Graph.cardinal g);
  List.iter
    (fun t ->
      check Alcotest.bool "no self loops" false (Term.equal t.Triple.s t.Triple.o))
    (Graph.triples g);
  let g2 = Generator.random_digraph ~seed:1 ~n:10 ~m:20 ~pred:"r" in
  check Testutil.graph "deterministic" g g2

let test_generator_social () =
  let g = Generator.social ~seed:5 ~people:40 in
  check Testutil.graph "deterministic" g (Generator.social ~seed:5 ~people:40);
  check Alcotest.bool "nonempty" true (Graph.cardinal g > 40)

let () =
  Alcotest.run "rdf"
    [
      ( "terms",
        [
          Alcotest.test_case "iri basics" `Quick test_iri_basics;
          Alcotest.test_case "iri pp" `Quick test_iri_pp;
          Alcotest.test_case "variable basics" `Quick test_variable_basics;
          Alcotest.test_case "variable fresh" `Quick test_variable_fresh;
          Alcotest.test_case "term" `Quick test_term;
        ] );
      ( "triple",
        [
          Alcotest.test_case "vars/ground" `Quick test_triple_vars;
          Alcotest.test_case "subst" `Quick test_triple_subst;
        ] );
      ( "index",
        [
          Alcotest.test_case "matching patterns" `Quick test_index_matching;
          Alcotest.test_case "match_count" `Quick test_index_match_count_agrees;
          Alcotest.test_case "term/var/iri sets" `Quick test_index_sets;
        ] );
      ("graph", [ Alcotest.test_case "groundness" `Quick test_graph_groundness ]);
      ( "turtle",
        [
          Alcotest.test_case "parse" `Quick test_turtle_parse;
          Alcotest.test_case "variables" `Quick test_turtle_variables;
          Alcotest.test_case "errors" `Quick test_turtle_errors;
          Alcotest.test_case "malformed input table" `Quick
            test_turtle_malformed_table;
          Alcotest.test_case "ntriples malformed table" `Quick
            test_ntriples_malformed_table;
          Alcotest.test_case "roundtrip social" `Quick test_turtle_roundtrip;
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~count:50 ~name:"roundtrip (random graphs)"
               Testutil.small_graph (fun g ->
                 match Turtle.parse_graph (Turtle.to_string g) with
                 | Ok g' -> Graph.equal g g'
                 | Error _ -> false));
        ] );
      ( "literal",
        [
          Alcotest.test_case "encode/decode" `Quick test_literal_encode_decode;
          literal_roundtrip_random;
          Alcotest.test_case "scan" `Quick test_literal_scan;
          Alcotest.test_case "turtle end-to-end" `Quick test_literal_turtle_end_to_end;
        ] );
      ( "generator",
        [
          Alcotest.test_case "shapes" `Quick test_generator_shapes;
          Alcotest.test_case "random digraph" `Quick test_generator_random;
          Alcotest.test_case "social" `Quick test_generator_social;
        ] );
    ]
