(* Robustness: resource budgets, fault injection into every
   potentially-exponential kernel, and the engine's graceful degradation.

   The tests here are the contract behind the CLI's --timeout/--fuel/
   --max-solutions flags: kernels stop promptly when the budget runs out,
   and the planner degrades instead of hanging. *)

open Rdf
module Budget = Resource.Budget

let check = Alcotest.check

let exhausts f =
  match f () with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted _ -> ()

(* ------------------------------------------------------------------ *)
(* Budget unit behaviour                                               *)
(* ------------------------------------------------------------------ *)

let test_unlimited () =
  let b = Budget.unlimited in
  check Alcotest.bool "not limited" false (Budget.is_limited b);
  for _ = 1 to 10_000 do
    Budget.tick b;
    Budget.solution b
  done;
  (* make with no limits is the unlimited budget: zero bookkeeping *)
  check Alcotest.bool "make () is unlimited" false
    (Budget.is_limited (Budget.make ()))

let test_fuel () =
  let b = Budget.make ~fuel:10 () in
  check Alcotest.bool "limited" true (Budget.is_limited b);
  for _ = 1 to 9 do Budget.tick b done;
  check Alcotest.int "spent counts ticks" 9 (Budget.spent b);
  (match Budget.tick b with
  | () -> Alcotest.fail "tick 10 must exhaust"
  | exception Budget.Exhausted { spent; _ } ->
      check Alcotest.int "spent at exhaustion" 10 spent);
  (* once exhausted, every further tick keeps failing *)
  exhausts (fun () -> Budget.tick b)

let test_max_solutions () =
  let b = Budget.make ~max_solutions:2 () in
  Budget.solution b;
  Budget.solution b;
  exhausts (fun () -> Budget.solution b)

let test_timeout () =
  let b = Budget.make ~timeout:0.05 () in
  let start = Unix.gettimeofday () in
  (match
     while true do Budget.tick b done
   with
  | () -> ()
  | exception Budget.Exhausted _ -> ());
  let elapsed = Unix.gettimeofday () -. start in
  check Alcotest.bool "stopped within 2x the deadline" true (elapsed < 0.1 *. 2.)

let test_phase () =
  let b = Budget.make ~fuel:1000 () in
  check Alcotest.string "initial phase" "-" (Budget.phase b);
  Budget.with_phase b "outer" (fun () ->
      check Alcotest.string "inside" "outer" (Budget.phase b);
      Budget.with_phase b "inner" (fun () ->
          check Alcotest.string "nested" "inner" (Budget.phase b));
      check Alcotest.string "restored" "outer" (Budget.phase b));
  let b' = Budget.make ~fuel:3 () in
  match
    Budget.with_phase b' "doomed" (fun () ->
        while true do Budget.tick b' done)
  with
  | () -> Alcotest.fail "must exhaust"
  | exception Budget.Exhausted { phase; _ } ->
      check Alcotest.string "exhaustion reports the phase" "doomed" phase

let test_validation () =
  let invalid f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  invalid (fun () -> Budget.make ~fuel:0 ());
  invalid (fun () -> Budget.make ~timeout:(-1.0) ());
  invalid (fun () -> Budget.make ~max_solutions:(-5) ())

(* ------------------------------------------------------------------ *)
(* Refill semantics: replenish / try_withdraw / the token bucket       *)
(* ------------------------------------------------------------------ *)

let test_replenish_standalone () =
  let b = Budget.make ~fuel:10 () in
  for _ = 1 to 5 do Budget.tick b done;
  check Alcotest.(option int) "fuel left after 5 ticks" (Some 5)
    (Budget.fuel_left b);
  Budget.replenish b 3;
  check Alcotest.(option int) "replenish adds" (Some 8) (Budget.fuel_left b);
  Budget.replenish ~cap:9 b 100;
  check Alcotest.(option int) "replenish clamps at cap" (Some 9)
    (Budget.fuel_left b);
  Budget.replenish ~cap:5 b 100;
  check Alcotest.(option int) "account above cap is left unchanged" (Some 9)
    (Budget.fuel_left b);
  (* fuel f permits f-1 further ticks, the f-th raises *)
  let ticks = ref 0 in
  (try
     while true do
       Budget.tick b;
       incr ticks
     done
   with Budget.Exhausted _ -> ());
  check Alcotest.int "replenished fuel is spendable" 8 !ticks;
  (* no-ops *)
  Budget.replenish Budget.unlimited 100;
  let t = Budget.make ~timeout:3600. () in
  Budget.replenish t 5;
  check Alcotest.(option int) "no fuel limit stays unlimited" None
    (Budget.fuel_left t)

let test_try_withdraw () =
  let b = Budget.make ~fuel:10 () in
  check Alcotest.bool "withdraw 4" true (Budget.try_withdraw b 4);
  check Alcotest.(option int) "6 left" (Some 6) (Budget.fuel_left b);
  check Alcotest.bool "overdraw refused" false (Budget.try_withdraw b 7);
  check Alcotest.(option int) "refusal leaves the account" (Some 6)
    (Budget.fuel_left b);
  check Alcotest.bool "exact drain" true (Budget.try_withdraw b 6);
  check Alcotest.bool "empty account refuses" false (Budget.try_withdraw b 1);
  check Alcotest.bool "zero always succeeds" true (Budget.try_withdraw b 0);
  check Alcotest.bool "unlimited always grants" true
    (Budget.try_withdraw Budget.unlimited 1_000_000);
  match Budget.try_withdraw b (-1) with
  | _ -> Alcotest.fail "negative withdrawal must be rejected"
  | exception Invalid_argument _ -> ()

let test_standalone_cancel () =
  let b = Budget.make ~fuel:1_000_000 () in
  Budget.cancel b;
  let ticks = ref 0 in
  (try
     for _ = 1 to 1000 do
       Budget.tick b;
       incr ticks
     done;
     Alcotest.fail "cancelled budget kept running"
   with Budget.Exhausted _ -> ());
  check Alcotest.bool "stopped within one deadline-check interval" true
    (!ticks <= Budget.deadline_check_interval);
  (* cancel on unlimited stays a no-op *)
  Budget.cancel Budget.unlimited;
  Budget.tick Budget.unlimited

(* Satellite: forked children never observe a refill mid-lease — the
   refill lands in the shared pool, a worker's current lease is
   untouched, and the extra fuel only becomes spendable at the next
   lease boundary. *)
let test_fork_refill_mid_lease () =
  let lease = Budget.deadline_check_interval in
  let b = Budget.make ~fuel:200 () in
  let views = Budget.fork b 1 in
  let v = views.(0) in
  for _ = 1 to 32 do Budget.tick v done;
  (* the first tick leased [lease] units; 32 ticks in, the lease holds
     lease - 32 *)
  check Alcotest.(option int) "mid-lease balance" (Some (lease - 32))
    (Budget.fuel_left v);
  Budget.replenish b 64;
  check Alcotest.(option int) "refill is invisible mid-lease"
    (Some (lease - 32))
    (Budget.fuel_left v);
  (* ... but it is spendable at the next lease boundary: the group's
     ticks total exactly (200 + 64) - 1, same contract as make ~fuel *)
  let ticks = ref 32 in
  (try
     while true do
       Budget.tick v;
       incr ticks
     done
   with Budget.Exhausted _ -> ());
  check Alcotest.int "group total = original + refill - 1" (200 + 64 - 1)
    !ticks

let test_fork_refill_join_conservation () =
  let b = Budget.make ~fuel:100 () in
  let views = Budget.fork b 2 in
  for _ = 1 to 10 do Budget.tick views.(0) done;
  Budget.replenish b 50;
  Budget.join b views;
  check Alcotest.int "spending folded into the parent" 10 (Budget.spent b);
  (* the parent reclaimed everything unspent: 100 + 50 - 10 = 140 units
     permit exactly 139 more ticks *)
  let ticks = ref 0 in
  (try
     while true do
       Budget.tick b;
       incr ticks
     done
   with Budget.Exhausted _ -> ());
  check Alcotest.int "unspent + refill returned on join" 139 !ticks

module Token_bucket = Resource.Token_bucket

let test_token_bucket_basic () =
  let tb = Token_bucket.create ~now:0. ~capacity:10 ~rate:2. () in
  check Alcotest.int "starts full" 10 (Token_bucket.level ~now:0. tb);
  check Alcotest.bool "drain the bucket" true (Token_bucket.try_take ~now:0. tb 10);
  check Alcotest.bool "empty refuses" false (Token_bucket.try_take ~now:0. tb 1);
  check Alcotest.(float 1e-9) "2 tokens/s: 4 tokens in 2s" 2.
    (Token_bucket.seconds_until ~now:0. tb 4);
  check Alcotest.int "refilled after 1s" 2 (Token_bucket.level ~now:1. tb);
  check Alcotest.bool "elapsed time grants" true
    (Token_bucket.try_take ~now:2.5 tb 5);
  check Alcotest.int "capacity clamp" 10 (Token_bucket.level ~now:1000. tb);
  Token_bucket.give_back tb 50;
  check Alcotest.int "give_back clamps at capacity" 10
    (Token_bucket.level ~now:1000. tb)

let test_token_bucket_fractional_carry () =
  let tb = Token_bucket.create ~now:0. ~capacity:4 ~rate:0.5 () in
  ignore (Token_bucket.try_take ~now:0. tb 4);
  check Alcotest.int "half a token is not a token" 0
    (Token_bucket.level ~now:1. tb);
  check Alcotest.int "two halves are" 1 (Token_bucket.level ~now:2. tb);
  check Alcotest.int "carry accumulates across refreshes" 2
    (Token_bucket.level ~now:4. tb)

let test_token_bucket_zero_rate () =
  let tb = Token_bucket.create ~now:0. ~capacity:5 ~rate:0. () in
  ignore (Token_bucket.try_take ~now:0. tb 5);
  check Alcotest.int "never refills" 0 (Token_bucket.level ~now:1e9 tb);
  check Alcotest.bool "seconds_until is infinite" true
    (Token_bucket.seconds_until ~now:0. tb 1 = infinity);
  check Alcotest.bool "over capacity is unreachable" true
    (Token_bucket.seconds_until ~now:0.
       (Token_bucket.create ~now:0. ~capacity:5 ~rate:1. ())
       6
    = infinity);
  Token_bucket.give_back tb 3;
  check Alcotest.bool "give_back re-arms a zero-rate bucket" true
    (Token_bucket.try_take ~now:0. tb 3)

(* ------------------------------------------------------------------ *)
(* Fault injection: every exponential kernel stops promptly           *)
(* ------------------------------------------------------------------ *)

(* A deliberately hard instance set: big enough that any of the kernels
   below would burn far more than [tiny] steps if left alone. *)

let tiny () = Budget.make ~fuel:50 ()

let dense_graph = Hardness.Clique.random_graph ~seed:7 ~n:18 ~edge_prob:0.5

let big_data = Generator.random_graph ~seed:11 ~n:10 ~predicates:[ "q0"; "q1" ] ~m:60

let star_pattern children =
  (* { t0 OPTIONAL { c1 } ... OPTIONAL { cn } }: 2^children subtrees *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf "{ ?x0 p:q0 ?x1 ";
  for i = 1 to children do
    Buffer.add_string buf
      (Printf.sprintf "OPTIONAL { ?x0 p:q0 ?y%d . ?y%d p:q1 ?z%d } " i i i)
  done;
  Buffer.add_string buf "}";
  match Sparql.Parser.parse (Buffer.contents buf) with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let star_forest children = Wdpt.Pattern_forest.of_algebra (star_pattern children)

let test_treewidth_exact () =
  exhausts (fun () ->
      Graphtheory.Treewidth.exact ~budget:(tiny ()) ~limit:20 dense_graph)

let test_treewidth_bb () =
  exhausts (fun () ->
      Graphtheory.Treewidth.exact_branch_and_bound ~budget:(tiny ()) dense_graph)

let test_hom_fold () =
  let source = Workload.Query_families.kk 4 [ "a"; "b"; "c"; "d" ] in
  let target = Rdf.Graph.to_index (Generator.transitive_tournament ~n:10 ~pred:"r") in
  exhausts (fun () ->
      Tgraphs.Homomorphism.all ~budget:(tiny ()) ~source ~target ())

let test_encoded_hom_fold () =
  (* same hard instance as the term-level solver test, through the
     encoded join: it must tick the budget just as well, under its own
     phase label *)
  let source = Workload.Query_families.kk 4 [ "a"; "b"; "c"; "d" ] in
  let graph = Generator.transitive_tournament ~n:10 ~pred:"r" in
  let enc = Encoded.Encoded_graph.of_graph graph in
  let compiled = Encoded.Encoded_hom.compile source enc in
  match Encoded.Encoded_hom.all ~budget:(tiny ()) compiled with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted { phase; _ } ->
      check Alcotest.string "phase" "hom" phase

let test_cores () =
  let g =
    Tgraphs.Gtgraph.make
      (Workload.Query_families.kk 4 [ "a"; "b"; "c"; "d" ])
      Variable.Set.empty
  in
  exhausts (fun () -> Tgraphs.Cores.core ~budget:(tiny ()) g)

let test_csp_hom () =
  let a =
    Csp.Structure.make ~size:8
      ~relations:
        [ ("e", List.concat_map (fun i -> List.filter_map (fun j -> if i <> j then Some [| i; j |] else None) (List.init 8 Fun.id)) (List.init 8 Fun.id)) ]
      ()
  in
  exhausts (fun () -> Csp.Hom.count ~budget:(tiny ()) a a)

let test_csp_core () =
  let a =
    Csp.Structure.make ~size:6
      ~relations:
        [ ("e", List.concat_map (fun i -> List.filter_map (fun j -> if i <> j then Some [| i; j |] else None) (List.init 6 Fun.id)) (List.init 6 Fun.id)) ]
      ()
  in
  exhausts (fun () -> Csp.Core_of.core ~budget:(tiny ()) a)

let test_pebble_game () =
  let tree = Workload.Query_families.clique_child 4 in
  let sub = Wdpt.Subtree.full tree in
  let g =
    Tgraphs.Gtgraph.make (Wdpt.Subtree.pat sub) Variable.Set.empty
  in
  let graph = Generator.transitive_tournament ~n:10 ~pred:"r" in
  exhausts (fun () ->
      Pebble.Pebble_game.wins ~budget:(tiny ()) ~k:3 g ~mu:Variable.Map.empty graph)

let test_encoded_pebble_game () =
  (* same hard instance as the term-level kernel test, through the
     dictionary-encoded kernel: it must tick the budget just as well *)
  let tree = Workload.Query_families.clique_child 4 in
  let sub = Wdpt.Subtree.full tree in
  let g = Tgraphs.Gtgraph.make (Wdpt.Subtree.pat sub) Variable.Set.empty in
  let graph = Generator.transitive_tournament ~n:10 ~pred:"r" in
  let enc = Encoded.Encoded_graph.of_graph graph in
  (match
     Encoded.Encoded_pebble.wins ~budget:(tiny ()) ~k:3 g
       ~mu:Variable.Map.empty enc
   with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted { phase; _ } ->
      check Alcotest.string "phase" "pebble" phase)

let test_naive_eval () =
  exhausts (fun () ->
      Wd_core.Naive_eval.solutions ~budget:(tiny ()) (star_forest 8) big_data)

let test_domination_width () =
  exhausts (fun () ->
      Wd_core.Domination_width.of_forest ~budget:(tiny ()) (star_forest 8))

let test_pebble_eval () =
  (* default kernel: the evaluation-wide cache over the encoded store *)
  exhausts (fun () ->
      Wd_core.Pebble_eval.solutions ~budget:(tiny ()) ~k:2 (star_forest 8) big_data)

let test_pebble_eval_term () =
  exhausts (fun () ->
      Wd_core.Pebble_eval.solutions ~budget:(tiny ())
        ~kernel:Wd_core.Pebble_eval.Term ~k:2 (star_forest 8) big_data)

let test_enumerate () =
  exhausts (fun () ->
      Wd_core.Enumerate.solutions ~budget:(tiny ()) (star_forest 8) big_data)

(* ------------------------------------------------------------------ *)
(* Engine degradation                                                  *)
(* ------------------------------------------------------------------ *)

let test_engine_degrades () =
  let pattern = star_pattern 6 in
  let graph = Generator.random_graph ~seed:3 ~n:5 ~predicates:[ "q0"; "q1" ] ~m:15 in
  (* fuel 1: the exact dw computation exhausts immediately, so the plan
     must fall back to the polynomial treewidth upper bound *)
  let plan = Wd_core.Engine.plan ~budget:(Budget.make ~fuel:1 ()) pattern in
  (match plan.Wd_core.Engine.width_source with
  | Wd_core.Engine.Fallback_upper_bound _ -> ()
  | Wd_core.Engine.Exact | Wd_core.Engine.From_hint _ ->
      Alcotest.fail "expected a degraded plan");
  let rendered = Fmt.str "%a" Wd_core.Engine.pp_plan plan in
  check Alcotest.bool "pp_plan surfaces the downgrade" true
    (Astring.String.is_infix ~affix:"upper bound" rendered);
  (* the degraded plan still computes the exact answers: pebble at any
     k >= dw is sound and complete *)
  let reference = Sparql.Eval.eval pattern graph in
  let degraded = Wd_core.Engine.solutions plan graph in
  check Alcotest.bool "degraded plan matches reference semantics" true
    (Sparql.Mapping.Set.equal reference degraded);
  (* an exact plan for the same query agrees on the width bound order *)
  let exact = Wd_core.Engine.plan pattern in
  check Alcotest.bool "fallback width dominates exact width" true
    (plan.Wd_core.Engine.domination_width
    >= exact.Wd_core.Engine.domination_width)

let test_classify_degrades () =
  let c =
    Wd_core.Classify.classify ~budget:(Budget.make ~fuel:1 ()) (star_pattern 6)
  in
  check Alcotest.bool "dw unknown" true (c.Wd_core.Classify.domination_width = None);
  match c.Wd_core.Classify.regime with
  | Wd_core.Classify.Width_unknown ub ->
      check Alcotest.bool "upper bound positive" true (ub >= 1)
  | _ -> Alcotest.fail "expected Width_unknown regime"

(* ------------------------------------------------------------------ *)
(* Property: a generous budget never changes results                   *)
(* ------------------------------------------------------------------ *)

let budget_transparency =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:40 ~name:"generous budget = unbudgeted semantics"
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let pattern =
           Workload.Query_families.random_wd_pattern ~seed ~triples:5 ~vars:5
             ~preds:2 ~depth:3 ~union:2
         in
         let graph =
           Generator.random_graph ~seed:(seed * 13 + 5) ~n:5
             ~predicates:[ "q0"; "q1" ] ~m:12
         in
         let forest = Wdpt.Pattern_forest.of_algebra pattern in
         let generous () = Budget.make ~fuel:max_int ~timeout:3600.0 () in
         let unbudgeted = Wdpt.Semantics.solutions forest graph in
         let budgeted =
           Wdpt.Semantics.solutions ~budget:(generous ()) forest graph
         in
         let planned =
           Wd_core.Engine.solutions ~budget:(generous ())
             (Wd_core.Engine.plan ~budget:(generous ()) pattern)
             graph
         in
         Sparql.Mapping.Set.equal unbudgeted budgeted
         && Sparql.Mapping.Set.equal unbudgeted planned))

(* ------------------------------------------------------------------ *)
(* Deadline smoke: tier-1 proof that a hard query stops on time        *)
(* ------------------------------------------------------------------ *)

let test_deadline_smoke () =
  (* 2^22 subtrees: hours of work if the deadline were ignored *)
  let forest = star_forest 22 in
  let deadline = 0.2 in
  let start = Unix.gettimeofday () in
  (match
     Wd_core.Domination_width.of_forest
       ~budget:(Budget.make ~timeout:deadline ())
       forest
   with
  | _ -> Alcotest.fail "expected Budget.Exhausted"
  | exception Budget.Exhausted { phase; _ } ->
      check Alcotest.string "phase" "domination-width" phase);
  let elapsed = Unix.gettimeofday () -. start in
  check Alcotest.bool
    (Printf.sprintf "terminated within 2x the deadline (took %.3fs)" elapsed)
    true
    (elapsed < 2.0 *. deadline)

let () =
  Alcotest.run "resource"
    [
      ( "budget",
        [
          Alcotest.test_case "unlimited" `Quick test_unlimited;
          Alcotest.test_case "fuel" `Quick test_fuel;
          Alcotest.test_case "max solutions" `Quick test_max_solutions;
          Alcotest.test_case "timeout" `Quick test_timeout;
          Alcotest.test_case "phases" `Quick test_phase;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "refill",
        [
          Alcotest.test_case "replenish standalone" `Quick
            test_replenish_standalone;
          Alcotest.test_case "try_withdraw" `Quick test_try_withdraw;
          Alcotest.test_case "standalone cancel" `Quick test_standalone_cancel;
          Alcotest.test_case "fork: refill invisible mid-lease" `Quick
            test_fork_refill_mid_lease;
          Alcotest.test_case "fork: refill conserved across join" `Quick
            test_fork_refill_join_conservation;
          Alcotest.test_case "token bucket basics" `Quick
            test_token_bucket_basic;
          Alcotest.test_case "token bucket fractional carry" `Quick
            test_token_bucket_fractional_carry;
          Alcotest.test_case "token bucket zero rate" `Quick
            test_token_bucket_zero_rate;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "treewidth exact" `Quick test_treewidth_exact;
          Alcotest.test_case "treewidth branch&bound" `Quick test_treewidth_bb;
          Alcotest.test_case "homomorphism fold" `Quick test_hom_fold;
          Alcotest.test_case "encoded hom fold" `Quick test_encoded_hom_fold;
          Alcotest.test_case "tgraph cores" `Quick test_cores;
          Alcotest.test_case "csp homomorphism" `Quick test_csp_hom;
          Alcotest.test_case "csp core" `Quick test_csp_core;
          Alcotest.test_case "pebble game" `Quick test_pebble_game;
          Alcotest.test_case "encoded pebble game" `Quick test_encoded_pebble_game;
          Alcotest.test_case "naive eval" `Quick test_naive_eval;
          Alcotest.test_case "domination width" `Quick test_domination_width;
          Alcotest.test_case "pebble eval (cached)" `Quick test_pebble_eval;
          Alcotest.test_case "pebble eval (term)" `Quick test_pebble_eval_term;
          Alcotest.test_case "enumerate" `Quick test_enumerate;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "engine falls back" `Quick test_engine_degrades;
          Alcotest.test_case "classify falls back" `Quick test_classify_degrades;
        ] );
      ("properties", [ budget_transparency ]);
      ( "deadline",
        [ Alcotest.test_case "hard query stops on time" `Quick test_deadline_smoke ] );
    ]
