(* PR 6: the long-running endpoint (lib/server). Units for the HTTP
   subset, the deterministic fault schedule, and admission control; then
   the end-to-end smoke test the issue asks for — start on an ephemeral
   port, serve one query, shed one request, reject one malformed frame,
   SIGTERM-drain, and come back with every descriptor closed. *)

module Io = Wd_server.Io
module Http = Wd_server.Http
module Faults = Wd_server.Faults
module Admission = Wd_server.Admission
module Server = Wd_server.Server
module Json = Analysis.Json
module Budget = Resource.Budget

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* HTTP parsing over a socketpair                                      *)
(* ------------------------------------------------------------------ *)

(* Feed raw bytes to one end of a socketpair and parse them off the
   other through the real Io/Http stack. The test is the client here,
   so plain Unix writes on [a] are fine (the lint rule covers lib/). *)
let with_request raw f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conn = Io.of_fd b in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      Io.close conn)
    (fun () ->
      let n = Unix.write_substring a raw 0 (String.length raw) in
      check Alcotest.int "request fits the socket buffer"
        (String.length raw) n;
      Unix.shutdown a Unix.SHUTDOWN_SEND;
      f conn)

let deadline () = Unix.gettimeofday () +. 2.

let test_http_get () =
  with_request
    "GET /sparql?query=%7B%20%3Fa%20p%3Aknows%20%3Fb%20%7D&x=1+2 \
     HTTP/1.1\r\n\
     Host: localhost\r\n\
     \r\n"
    (fun conn ->
      let req =
        Http.read_request conn ~deadline:(deadline ()) ~max_bytes:4096
      in
      check Alcotest.string "method" "GET" req.Http.meth;
      check Alcotest.string "path" "/sparql" req.Http.path;
      check Alcotest.(option string) "decoded query parameter"
        (Some "{ ?a p:knows ?b }")
        (List.assoc_opt "query" req.Http.query);
      check Alcotest.(option string) "plus decodes to space" (Some "1 2")
        (List.assoc_opt "x" req.Http.query);
      check Alcotest.(option string) "headers lowercased" (Some "localhost")
        (Http.header "HOST" req))

let test_http_post_body () =
  let body = "{ ?a p:knows ?b }" in
  with_request
    (Printf.sprintf
       "POST /sparql HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
       (String.length body) body)
    (fun conn ->
      let req =
        Http.read_request conn ~deadline:(deadline ()) ~max_bytes:4096
      in
      check Alcotest.string "method" "POST" req.Http.meth;
      check Alcotest.string "body read to Content-Length" body req.Http.body)

let test_http_malformed () =
  let raises_malformed raw =
    with_request raw (fun conn ->
        match
          Http.read_request conn ~deadline:(deadline ()) ~max_bytes:4096
        with
        | _ -> Alcotest.fail "malformed request parsed"
        | exception Http.Malformed _ -> ())
  in
  raises_malformed "BOGUS\r\n\r\n";
  raises_malformed "GET /x HTTP/3.0\r\n\r\n";
  raises_malformed "GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n";
  (* the subset excludes chunked bodies *)
  raises_malformed
    "POST /sparql HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  (* bad percent escape in the query string *)
  raises_malformed "GET /sparql?query=%zz HTTP/1.1\r\n\r\n"

let test_http_too_large () =
  with_request
    (Printf.sprintf "POST /sparql HTTP/1.1\r\nContent-Length: 300\r\n\r\n%s"
       (String.make 300 'q'))
    (fun conn ->
      match
        Http.read_request conn ~deadline:(deadline ()) ~max_bytes:128
      with
      | _ -> Alcotest.fail "oversized body accepted"
      | exception Io.Too_large -> ())

let test_http_disconnect () =
  with_request "GET /spar" (fun conn ->
      match
        Http.read_request conn ~deadline:(deadline ()) ~max_bytes:4096
      with
      | _ -> Alcotest.fail "truncated request parsed"
      | exception Io.Disconnected -> ())

let test_io_fd_accounting () =
  let before = Io.live () in
  with_request "GET / HTTP/1.1\r\n\r\n" (fun conn ->
      check Alcotest.int "wrapping a socket raises live" (before + 1)
        (Io.live ());
      ignore (Http.read_request conn ~deadline:(deadline ()) ~max_bytes:4096);
      Io.close conn;
      Io.close conn (* idempotent *));
  check Alcotest.int "closing restores the baseline" before (Io.live ())

(* ------------------------------------------------------------------ *)
(* Deterministic fault schedule                                        *)
(* ------------------------------------------------------------------ *)

let test_faults_parse () =
  let ok spec = Result.is_ok (Faults.parse spec)
  and err spec = Result.is_error (Faults.parse spec) in
  check Alcotest.bool "empty spec means no faults" true (ok "");
  check Alcotest.bool "full spec parses" true
    (ok "disconnect:11,slow:9,malformed:5,starve:7,poison:13");
  check Alcotest.bool "unknown kind rejected" true (err "bogus:3");
  check Alcotest.bool "zero period rejected" true (err "slow:0");
  check Alcotest.bool "negative period rejected" true (err "slow:-2");
  check Alcotest.bool "non-numeric period rejected" true (err "slow:x");
  check Alcotest.bool "duplicate kind rejected" true (err "slow:2,slow:3");
  check Alcotest.bool "missing period rejected" true (err "slow")

let test_faults_schedule () =
  let t = Result.get_ok (Faults.parse "disconnect:3,slow:2") in
  let kind = Alcotest.option (Alcotest.testable Fmt.nop ( = )) in
  check kind "no fault for request 1" None (Faults.for_request t 1);
  check kind "period 2 arms slow" (Some Faults.Slow) (Faults.for_request t 2);
  check kind "period 3 arms disconnect" (Some Faults.Disconnect)
    (Faults.for_request t 3);
  (* both periods divide 6: priority picks exactly one *)
  check kind "priority breaks ties" (Some Faults.Disconnect)
    (Faults.for_request t 6);
  check kind "non-positive indices are never faulted" None
    (Faults.for_request t 0);
  check kind "empty schedule injects nothing" None
    (Faults.for_request Faults.none 6);
  (* the schedule is a pure function of the index: a harness can
     reconcile server counters against its own simulation *)
  let sim = List.init 100 (fun i -> Faults.for_request t (i + 1)) in
  (* multiples of 2 or 3 in 1..100: 50 + 33 - 16 *)
  check Alcotest.int "exactly the predicted fault volume" 67
    (List.length (List.filter Option.is_some sim))

(* ------------------------------------------------------------------ *)
(* Admission control                                                   *)
(* ------------------------------------------------------------------ *)

let admission_config =
  {
    Admission.request_fuel = 10;
    request_timeout = 5.;
    max_solutions = None;
    global_fuel = Some 20;
    refill_rate = 0.;
    max_inflight = 3;
  }

let test_admission_watermarks () =
  let t = Admission.create admission_config in
  let l1 = Result.get_ok (Admission.try_admit t) in
  let l2 = Result.get_ok (Admission.try_admit t) in
  check Alcotest.(option int) "two grants drain the bucket" (Some 0)
    (Admission.bucket_level t);
  (* slots remain, tokens do not: shed on the budget watermark, and the
     failed admission must roll its slot reservation back *)
  (match Admission.try_admit t with
  | Ok _ -> Alcotest.fail "admitted past the global budget"
  | Error (Admission.Budget_watermark, retry) ->
      check Alcotest.bool "Retry-After is at least a second" true (retry >= 1.)
  | Error (Admission.Inflight_watermark, _) ->
      Alcotest.fail "shed on the wrong watermark");
  check Alcotest.int "failed admission rolled back its slot" 2
    (Admission.inflight t);
  (* an unspent release returns the full grant *)
  Admission.release t l1;
  check Alcotest.(option int) "released fuel refills the bucket" (Some 10)
    (Admission.bucket_level t);
  check Alcotest.int "slot freed" 1 (Admission.inflight t);
  let l3 = Result.get_ok (Admission.try_admit t) in
  let _l4 =
    (* inflight is 2 of 3 but the bucket is empty again *)
    match Admission.try_admit t with
    | Ok _ -> Alcotest.fail "admitted with an empty bucket"
    | Error (Admission.Budget_watermark, _) -> ()
    | Error (Admission.Inflight_watermark, _) ->
        Alcotest.fail "shed on the wrong watermark"
  in
  Admission.release t l2;
  Admission.release t l3;
  check Alcotest.int "all slots freed" 0 (Admission.inflight t);
  check Alcotest.int "three admissions" 3 (Admission.admitted t);
  check Alcotest.int "two budget sheds" 2 (Admission.shed_tokens t)

let test_admission_inflight_watermark () =
  let t =
    Admission.create
      { admission_config with global_fuel = None; max_inflight = 1 }
  in
  let l1 = Result.get_ok (Admission.try_admit t) in
  (match Admission.try_admit t with
  | Ok _ -> Alcotest.fail "admitted past the in-flight watermark"
  | Error (Admission.Inflight_watermark, retry) ->
      check Alcotest.bool "Retry-After is at least a second" true (retry >= 1.)
  | Error (Admission.Budget_watermark, _) ->
      Alcotest.fail "shed on the wrong watermark");
  Admission.release t l1;
  check Alcotest.int "one in-flight shed" 1 (Admission.shed_inflight t);
  check Alcotest.(option int) "no bucket without a global budget" None
    (Admission.bucket_level t)

let test_admission_starvation () =
  let t = Admission.create { admission_config with global_fuel = None } in
  let lease = Result.get_ok (Admission.try_admit ~starve:true t) in
  check Alcotest.int "the grant is accounted at full price"
    admission_config.Admission.request_fuel lease.Admission.fuel;
  (* ... but the budget itself is nearly empty: evaluation trips the
     budget-exhaustion path almost immediately *)
  (match
     Budget.with_phase lease.Admission.budget "test" (fun () ->
         for _ = 1 to 16 do
           Budget.tick lease.Admission.budget
         done)
   with
  | () -> Alcotest.fail "starved budget survived 16 ticks"
  | exception Budget.Exhausted { phase; _ } ->
      check Alcotest.string "the tripping phase is reported" "test" phase);
  Admission.release t lease

(* ------------------------------------------------------------------ *)
(* End-to-end smoke (satellite 6)                                      *)
(* ------------------------------------------------------------------ *)

(* A blocking one-shot HTTP client: connect, send, read to EOF (the
   server closes every connection), return (status, header lines, body). *)
let http_request ~port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let rec send off =
        if off < String.length raw then
          send (off + Unix.write_substring fd raw off (String.length raw - off))
      in
      send 0;
      let buf = Bytes.create 4096 and out = Buffer.create 256 in
      let rec drain () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> ()
        | n ->
            Buffer.add_subbytes out buf 0 n;
            drain ()
      in
      drain ();
      Buffer.contents out)

let response_status raw =
  match String.split_on_char ' ' raw with
  | _http :: code :: _ -> int_of_string code
  | _ -> Alcotest.failf "unparseable response: %S" raw

let response_header name raw =
  let lower = String.lowercase_ascii in
  String.split_on_char '\n' raw
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | Some i when lower (String.sub line 0 i) = lower name ->
             Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
         | _ -> None)

let get ~port path = http_request ~port (Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path)

let post_query ~port q =
  http_request ~port
    (Printf.sprintf "POST /sparql HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
       (String.length q) q)

let smoke_config () =
  let fuel = 200_000 in
  {
    Server.graph = Rdf.Generator.social ~seed:3 ~people:12;
    reload = None;
    host = "127.0.0.1";
    port = 0;
    workers = 2;
    domains = 1;
    queue_capacity = 4;
    admission =
      {
        Admission.request_fuel = fuel;
        request_timeout = 5.;
        max_solutions = None;
        (* the bucket holds exactly one grant and never refills: the
           first query leaves it short, so the next /sparql is a
           deterministic 503 shed *)
        global_fuel = Some fuel;
        refill_rate = 0.;
        max_inflight = 4;
      };
    max_request_bytes = 1 lsl 16;
    io_timeout = 2.;
    faults = Faults.none;
    plan_capacity = 4;
  }

let test_smoke () =
  let fd_baseline = Io.live () in
  let t = Server.start (smoke_config ()) in
  Server.install_signal_handlers t;
  let port = Server.port t in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default)
    (fun () ->
      let health = get ~port "/health" in
      check Alcotest.int "health is 200" 200 (response_status health);
      check Alcotest.bool "health says ok" true
        (Astring.String.is_infix ~affix:"\"ok\"" health);
      (* one real query *)
      let ok = post_query ~port "{ ?a p:knows ?b }" in
      check Alcotest.int "query is 200" 200 (response_status ok);
      check Alcotest.bool "SPARQL JSON results" true
        (Astring.String.is_infix ~affix:"bindings" ok);
      (* one shed: the bucket cannot cover a second grant *)
      let shed = post_query ~port "{ ?a p:knows ?b }" in
      check Alcotest.int "second query is shed with 503" 503
        (response_status shed);
      check Alcotest.bool "shed carries Retry-After" true
        (Option.is_some (response_header "retry-after" shed));
      (* one malformed frame *)
      let bad = http_request ~port "NOT_HTTP\r\n\r\n" in
      check Alcotest.int "malformed frame is 400" 400 (response_status bad);
      (* endpoints that bypass admission still serve while shedding *)
      let stats = get ~port "/stats" in
      check Alcotest.int "stats is 200" 200 (response_status stats);
      check Alcotest.int "unknown path is 404" 404
        (response_status (get ~port "/nope"));
      (* SIGTERM drains: join completes, the port closes, no fd leaks *)
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      let final = Server.join t in
      (match
         Json.member "responses" final |> Option.get |> Json.member "200"
       with
      | Some n ->
          check Alcotest.bool "final stats count the successes" true
            (Option.value ~default:0 (Json.to_int n) >= 3)
      | None -> Alcotest.fail "final stats lack a responses section");
      (match http_request ~port "GET /health HTTP/1.1\r\n\r\n" with
      | _ -> Alcotest.fail "listener still accepting after drain"
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET), _, _)
        -> ());
      check Alcotest.int "every server descriptor closed" fd_baseline
        (Io.live ()))

(* PR 9: SIGHUP-style reload picks up freshly appended delta segments
   without dropping the listener or in-flight connections. *)
let test_reload_picks_up_segments () =
  let dir = Filename.temp_file "wdsparql_srv_reload" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () ->
      let path = Filename.concat dir "s.wds" in
      let g = Rdf.Generator.path ~n:3 ~pred:"knows" in
      Storage.save (Encoded.Encoded_graph.of_graph g) path;
      let config =
        {
          (smoke_config ()) with
          Server.graph = Storage.load_graph path;
          reload = Some (fun () -> Storage.load_graph path);
          admission =
            {
              Admission.request_fuel = 200_000;
              request_timeout = 5.;
              max_solutions = None;
              global_fuel = None;
              refill_rate = 0.;
              max_inflight = 4;
            };
        }
      in
      let t = Server.start config in
      let port = Server.port t in
      let count_bindings body =
        (* one "?a ↦" pair per solution: count subject keys *)
        let rec go i n =
          match Astring.String.find_sub ~start:i ~sub:"{\"a\"" body with
          | Some j -> go (j + 1) (n + 1)
          | None -> n
        in
        go 0 0
      in
      Fun.protect
        ~finally:(fun () ->
          Server.initiate_drain t;
          ignore (Server.join t))
        (fun () ->
          let before = post_query ~port "{ ?a p:knows ?b }" in
          check Alcotest.int "query before reload is 200" 200
            (response_status before);
          check Alcotest.int "two edges before the append" 2
            (count_bindings before);
          (* append a segment behind the server's back, then signal *)
          let knows = Rdf.Term.iri "p:knows" in
          let n k = Rdf.Term.iri (Printf.sprintf "n:%d" k) in
          (match
             Storage.append ~adds:[ Rdf.Triple.make (n 3) knows (n 4) ] path
           with
          | Some _ -> ()
          | None -> Alcotest.fail "append was a no-op");
          Server.request_reload t;
          (* a worker services the reload between requests; poll *)
          let deadline = Unix.gettimeofday () +. 5. in
          let rec wait () =
            let resp = post_query ~port "{ ?a p:knows ?b }" in
            check Alcotest.int "query during reload window is 200" 200
              (response_status resp);
            if count_bindings resp = 3 then ()
            else if Unix.gettimeofday () > deadline then
              Alcotest.failf "reload never surfaced (last saw %d bindings)"
                (count_bindings resp)
            else begin
              Thread.delay 0.05;
              wait ()
            end
          in
          wait ();
          let stats = get ~port "/stats" in
          check Alcotest.bool "stats count the reload" true
            (Astring.String.is_infix ~affix:"\"reloads\": 1" stats
            || Astring.String.is_infix ~affix:"\"reloads\":1" stats)))

let () =
  Alcotest.run "server"
    [
      ( "http",
        [
          Alcotest.test_case "GET with encoded query" `Quick test_http_get;
          Alcotest.test_case "POST body" `Quick test_http_post_body;
          Alcotest.test_case "malformed frames" `Quick test_http_malformed;
          Alcotest.test_case "oversized body" `Quick test_http_too_large;
          Alcotest.test_case "truncated request" `Quick test_http_disconnect;
          Alcotest.test_case "fd accounting" `Quick test_io_fd_accounting;
        ] );
      ( "faults",
        [
          Alcotest.test_case "spec parsing" `Quick test_faults_parse;
          Alcotest.test_case "deterministic schedule" `Quick
            test_faults_schedule;
        ] );
      ( "admission",
        [
          Alcotest.test_case "budget watermark and rollback" `Quick
            test_admission_watermarks;
          Alcotest.test_case "in-flight watermark" `Quick
            test_admission_inflight_watermark;
          Alcotest.test_case "budget starvation" `Quick
            test_admission_starvation;
        ] );
      ( "smoke",
        [
          Alcotest.test_case "serve, shed, reject, drain" `Quick test_smoke;
          Alcotest.test_case "reload picks up appended segments" `Quick
            test_reload_picks_up_segments;
        ] );
    ]
