open Rdf
open Sparql

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let v = Term.var
let iri_t = Term.iri
let t s p o = Triple.make s p o
let iri = Iri.of_string

(* ------------------------------------------------------------------ *)
(* Mapping                                                             *)
(* ------------------------------------------------------------------ *)

let m = Mapping.of_list

let test_mapping_compat () =
  let m1 = m [ (Variable.of_string "x", iri "n:a"); (Variable.of_string "y", iri "n:b") ] in
  let m2 = m [ (Variable.of_string "y", iri "n:b"); (Variable.of_string "z", iri "n:c") ] in
  let m3 = m [ (Variable.of_string "y", iri "n:OTHER") ] in
  check Alcotest.bool "compatible" true (Mapping.compatible m1 m2);
  check Alcotest.bool "symmetric" true (Mapping.compatible m2 m1);
  check Alcotest.bool "incompatible" false (Mapping.compatible m1 m3);
  check Alcotest.bool "empty compatible with all" true
    (Mapping.compatible Mapping.empty m1);
  let u = Mapping.union m1 m2 in
  check Alcotest.int "union size" 3 (Mapping.cardinal u);
  check Alcotest.(option string) "union value" (Some "n:c")
    (Option.map Iri.to_string (Mapping.find (Variable.of_string "z") u))

let test_mapping_apply () =
  let m1 = m [ (Variable.of_string "x", iri "n:a") ] in
  check Testutil.triple "apply substitutes"
    (t (iri_t "n:a") (iri_t "p:p") (v "y"))
    (Mapping.apply m1 (t (v "x") (iri_t "p:p") (v "y")))

let test_mapping_conversions () =
  let m1 = m [ (Variable.of_string "x", iri "n:a") ] in
  check Alcotest.bool "assignment roundtrip" true
    (match Mapping.of_assignment (Mapping.to_assignment m1) with
    | Some m2 -> Mapping.equal m1 m2
    | None -> false);
  let bad = Variable.Map.singleton (Variable.of_string "x") (v "y") in
  check Alcotest.bool "non-iri rejected" true (Mapping.of_assignment bad = None)

(* ------------------------------------------------------------------ *)
(* Algebra                                                             *)
(* ------------------------------------------------------------------ *)

let p1 =
  (* P1 of Example 1 *)
  Algebra.opt
    (Algebra.opt
       (Algebra.triple (t (v "x") (iri_t "p:p") (v "y")))
       (Algebra.triple (t (v "z") (iri_t "p:q") (v "x"))))
    (Algebra.and_
       (Algebra.triple (t (v "y") (iri_t "p:r") (v "o1")))
       (Algebra.triple (t (v "o1") (iri_t "p:r") (v "o2"))))

let p2 =
  (* P2 of Example 1 — not well-designed *)
  Algebra.opt
    (Algebra.opt
       (Algebra.triple (t (v "x") (iri_t "p:p") (v "y")))
       (Algebra.triple (t (v "z") (iri_t "p:q") (v "x"))))
    (Algebra.and_
       (Algebra.triple (t (v "y") (iri_t "p:r") (v "z")))
       (Algebra.triple (t (v "z") (iri_t "p:r") (v "o2"))))

let test_algebra_accessors () =
  check Alcotest.int "size" 4 (Algebra.size p1);
  check Alcotest.int "depth" 2 (Algebra.depth p1);
  check Alcotest.int "vars" 5 (Variable.Set.cardinal (Algebra.vars p1));
  check Alcotest.int "subpatterns" 7 (List.length (Algebra.subpatterns p1));
  check Alcotest.bool "equal refl" true (Algebra.equal p1 p1);
  check Alcotest.bool "distinct" false (Algebra.equal p1 p2)

(* ------------------------------------------------------------------ *)
(* Well-designedness (Example 1 of the paper)                          *)
(* ------------------------------------------------------------------ *)

let test_example1 () =
  check Alcotest.bool "P1 is well-designed" true (Well_designed.is_well_designed p1);
  check Alcotest.bool "P2 is not" false (Well_designed.is_well_designed p2);
  (match Well_designed.check p2 with
  | Error (Well_designed.Unsafe_variable { variable = var; _ }) ->
      check Alcotest.string "?z is the offender" "z" (Variable.to_string var)
  | _ -> Alcotest.fail "expected Unsafe_variable ?z")

let test_union_handling () =
  let u = Algebra.union p1 p1 in
  check Alcotest.bool "top-level union fine" true (Well_designed.is_well_designed u);
  check Alcotest.int "branches" 2 (List.length (Well_designed.union_branches u));
  let nested = Algebra.and_ u (Algebra.triple (t (v "x") (iri_t "p:s") (v "w"))) in
  check Alcotest.bool "nested union rejected" false
    (Well_designed.is_well_designed nested);
  (match Well_designed.check nested with
  | Error (Well_designed.Nested_union _) -> ()
  | _ -> Alcotest.fail "expected Nested_union");
  check Alcotest.bool "union free" false (Well_designed.is_union_free u);
  check Alcotest.bool "p1 union free" true (Well_designed.is_union_free p1)

let test_and_scope () =
  (* ?z in the OPT arm also occurs in a sibling AND conjunct -> unsafe *)
  let bad =
    Algebra.and_
      (Algebra.opt
         (Algebra.triple (t (v "x") (iri_t "p:p") (v "y")))
         (Algebra.triple (t (v "x") (iri_t "p:q") (v "z"))))
      (Algebra.triple (t (v "z") (iri_t "p:s") (v "w")))
  in
  check Alcotest.bool "sibling leak rejected" false (Well_designed.is_well_designed bad)

let random_wd_patterns_are_wd =
  qcheck ~count:100 "generated patterns are well-designed" Testutil.wd_pattern
    Well_designed.is_well_designed

(* ------------------------------------------------------------------ *)
(* Parser / Printer                                                    *)
(* ------------------------------------------------------------------ *)

let parses s =
  match Parser.parse s with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse error: %s" e

let test_parser_basics () =
  let p = parses "{ ?x p:knows ?y . }" in
  check Testutil.algebra "single triple"
    (Algebra.triple (t (v "x") (iri_t "p:knows") (v "y")))
    p;
  let p = parses "{ ?x p:a ?y . ?y p:b ?z }" in
  check Alcotest.int "implicit AND" 2 (Algebra.size p);
  let p = parses "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } }" in
  (match p with Algebra.Opt _ -> () | _ -> Alcotest.fail "expected OPT");
  let p = parses "{ ?x p:a ?y } UNION { ?x p:b ?y }" in
  (match p with Algebra.Union _ -> () | _ -> Alcotest.fail "expected UNION");
  let p = parses "{ { ?x p:a ?y } UNION { ?x p:b ?y } }" in
  (match p with Algebra.Union _ -> () | _ -> Alcotest.fail "nested braces union")

let test_parser_prefixes_and_keywords () =
  let p = parses "PREFIX foaf: <http://xmlns.com/foaf/0.1/> { ?a foaf:knows ?b }" in
  check Testutil.algebra "prefix expansion"
    (Algebra.triple (t (v "a") (iri_t "http://xmlns.com/foaf/0.1/knows") (v "b")))
    p;
  let p = parses "{ ?x p:a ?y . optional { ?y p:b ?z } }" in
  (match p with Algebra.Opt _ -> () | _ -> Alcotest.fail "keywords case-insensitive");
  let p = parses "{ <http://e.org/s> <http://e.org/p> ?o }" in
  check Alcotest.int "iriref terms" 1 (Algebra.size p)

let test_parser_errors () =
  let fails s =
    match Parser.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse: %s" s
  in
  fails "{ }";
  fails "{ OPTIONAL { ?x p:a ?y } }";
  fails "{ ?x p:a }";
  fails "{ ?x p:a ?y } junk";
  fails "?x p:a ?y";
  fails "{ ?x p:a ?y . OPTIONAL ?z }";
  fails "{ ?x p:a <unterminated }"

let roundtrip =
  qcheck ~count:150 "print-then-parse is the identity" Testutil.wd_pattern
    (fun p ->
      match Parser.parse (Printer.to_string p) with
      | Ok p' -> Algebra.equal p p'
      | Error _ -> false)

let test_roundtrip_handwritten () =
  List.iter
    (fun src ->
      let p = parses src in
      check Testutil.algebra src p (parses (Printer.to_string p)))
    [
      "{ ?x p:a ?y }";
      "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z } OPTIONAL { ?y p:c ?w } }";
      "{ { ?x p:a ?y } UNION { ?x p:b ?y } } UNION { ?x p:c ?y }";
      "{ ?x p:a ?y . OPTIONAL { ?y p:b ?z . OPTIONAL { ?z p:c ?w } } }";
      "{ ?x p:a c:1 . c:2 p:b ?x }";
    ]

(* ------------------------------------------------------------------ *)
(* Eval (the recursive semantics)                                      *)
(* ------------------------------------------------------------------ *)

let tiny_graph =
  Graph.of_triples
    [
      t (iri_t "n:a") (iri_t "p:knows") (iri_t "n:b");
      t (iri_t "n:b") (iri_t "p:knows") (iri_t "n:c");
      t (iri_t "n:b") (iri_t "p:mail") (iri_t "m:b");
    ]

let sols p = Eval.eval (parses p) tiny_graph

let test_eval_triple () =
  let s = sols "{ ?x p:knows ?y }" in
  check Alcotest.int "two matches" 2 (Mapping.Set.cardinal s);
  let s = sols "{ n:a p:knows ?y }" in
  check Testutil.mapping_set "constant subject"
    (Mapping.Set.singleton (m [ (Variable.of_string "y", iri "n:b") ]))
    s

let test_eval_and () =
  let s = sols "{ ?x p:knows ?y . ?y p:knows ?z }" in
  check Alcotest.int "join" 1 (Mapping.Set.cardinal s);
  let s = sols "{ ?x p:knows ?y . ?y p:missing ?z }" in
  check Alcotest.int "empty join" 0 (Mapping.Set.cardinal s)

let test_eval_opt () =
  (* n:a has no mail, n:b does: OPT keeps both, extending only n:b *)
  let s = sols "{ ?x p:knows ?y . OPTIONAL { ?y p:mail ?m } }" in
  check Alcotest.int "both solutions" 2 (Mapping.Set.cardinal s);
  let extended =
    Mapping.Set.filter (fun mu -> Mapping.find (Variable.of_string "m") mu <> None) s
  in
  check Alcotest.int "exactly one extended" 1 (Mapping.Set.cardinal extended);
  (* the unextended solution is for ?y = n:c (who has no mail) *)
  let bare = Mapping.Set.choose (Mapping.Set.diff s extended) in
  check Alcotest.(option string) "bare solution is b->c" (Some "n:c")
    (Option.map Iri.to_string (Mapping.find (Variable.of_string "y") bare))

let test_eval_opt_subtlety () =
  (* µ1 is dropped from the OPT part only if NO compatible µ2 exists *)
  let s = sols "{ ?x p:knows ?y . OPTIONAL { ?z p:mail m:b } }" in
  (* right side has solutions {z=n:b}; compatible with everything *)
  check Alcotest.int "all extended" 2 (Mapping.Set.cardinal s);
  Mapping.Set.iter
    (fun mu ->
      check Alcotest.(option string) "z bound" (Some "n:b")
        (Option.map Iri.to_string (Mapping.find (Variable.of_string "z") mu)))
    s

let test_eval_union () =
  let s = sols "{ ?x p:knows ?y } UNION { ?x p:mail ?w }" in
  check Alcotest.int "union" 3 (Mapping.Set.cardinal s)

let test_eval_check () =
  let p = parses "{ ?x p:knows ?y }" in
  let yes = m [ (Variable.of_string "x", iri "n:a"); (Variable.of_string "y", iri "n:b") ] in
  let no = m [ (Variable.of_string "x", iri "n:a") ] in
  check Alcotest.bool "member" true (Eval.check p tiny_graph yes);
  check Alcotest.bool "partial mapping is not a solution" false
    (Eval.check p tiny_graph no)

let () =
  Alcotest.run "sparql"
    [
      ( "mapping",
        [
          Alcotest.test_case "compatibility/union" `Quick test_mapping_compat;
          Alcotest.test_case "apply" `Quick test_mapping_apply;
          Alcotest.test_case "conversions" `Quick test_mapping_conversions;
        ] );
      ( "algebra",
        [ Alcotest.test_case "accessors" `Quick test_algebra_accessors ] );
      ( "well-designed",
        [
          Alcotest.test_case "paper example 1" `Quick test_example1;
          Alcotest.test_case "union placement" `Quick test_union_handling;
          Alcotest.test_case "AND-sibling scope" `Quick test_and_scope;
          random_wd_patterns_are_wd;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basics" `Quick test_parser_basics;
          Alcotest.test_case "prefixes/keywords" `Quick test_parser_prefixes_and_keywords;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "handwritten roundtrips" `Quick test_roundtrip_handwritten;
          roundtrip;
        ] );
      ( "eval",
        [
          Alcotest.test_case "triple" `Quick test_eval_triple;
          Alcotest.test_case "and" `Quick test_eval_and;
          Alcotest.test_case "opt" `Quick test_eval_opt;
          Alcotest.test_case "opt compatibility subtlety" `Quick test_eval_opt_subtlety;
          Alcotest.test_case "union" `Quick test_eval_union;
          Alcotest.test_case "check" `Quick test_eval_check;
        ] );
    ]
