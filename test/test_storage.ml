(* Tests for the storage/planning layer: statistics, N-Triples I/O, the
   dictionary-encoded store and its join engine, plan explanation, and the
   dw-recognition short-circuit. *)

open Rdf

let check = Alcotest.check

let qcheck ?(count = 100) name arb law =
  QCheck_alcotest.to_alcotest (QCheck.Test.make ~count ~name arb law)

let seed_arb = QCheck.make QCheck.Gen.(int_bound 100000)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let sample_graph () =
  Graph.of_triples
    [
      Triple.make (Term.iri "n:a") (Term.iri "p:knows") (Term.iri "n:b");
      Triple.make (Term.iri "n:a") (Term.iri "p:knows") (Term.iri "n:c");
      Triple.make (Term.iri "n:b") (Term.iri "p:knows") (Term.iri "n:c");
      Triple.make (Term.iri "n:a") (Term.iri "p:mail") (Term.iri "m:a");
    ]

let test_stats_basics () =
  let s = Stats.of_graph (sample_graph ()) in
  check Alcotest.int "total" 4 (Stats.triples s);
  check Alcotest.int "subjects" 2 (Stats.distinct_subjects s);
  check Alcotest.int "objects" 3 (Stats.distinct_objects s);
  check Alcotest.int "two predicates" 2 (List.length (Stats.predicates s));
  (match Stats.predicate s (Iri.of_string "p:knows") with
  | Some k ->
      check Alcotest.int "knows triples" 3 k.Stats.triples;
      check Alcotest.int "knows subjects" 2 k.Stats.distinct_subjects;
      check Alcotest.int "knows objects" 2 k.Stats.distinct_objects
  | None -> Alcotest.fail "knows missing");
  check Alcotest.bool "sorted by count" true
    (match Stats.predicates s with
    | (_, a) :: (_, b) :: _ -> a.Stats.triples >= b.Stats.triples
    | _ -> false)

let test_stats_selectivity () =
  let s = Stats.of_graph (sample_graph ()) in
  let sel t = Stats.selectivity s t in
  let fully_wild = Triple.make (Term.var "a") (Term.var "p") (Term.var "b") in
  check (Alcotest.float 1e-9) "wild pattern matches everything" 1.0 (sel fully_wild);
  let knows = Triple.make (Term.var "a") (Term.iri "p:knows") (Term.var "b") in
  check (Alcotest.float 1e-9) "predicate share" 0.75 (sel knows);
  let anchored =
    Triple.make (Term.iri "n:a") (Term.iri "p:knows") (Term.var "b")
  in
  check (Alcotest.float 1e-9) "bound subject divides" 0.375 (sel anchored);
  let unknown = Triple.make (Term.var "a") (Term.iri "p:zzz") (Term.var "b") in
  check (Alcotest.float 1e-9) "unknown predicate" 0.0 (sel unknown);
  check Alcotest.bool "estimates within totals" true
    (Stats.estimated_matches s knows <= 4.0)

let stats_estimates_bounded =
  qcheck ~count:60 "selectivity stays within [0, 1]" Testutil.small_graph
    (fun g ->
      let s = Stats.of_graph g in
      List.for_all
        (fun t ->
          let sel = Stats.selectivity s t in
          sel >= 0. && sel <= 1.)
        (Graph.triples g))

(* ------------------------------------------------------------------ *)
(* N-Triples                                                           *)
(* ------------------------------------------------------------------ *)

let test_ntriples_parse () =
  let src = {|# comment
<n:a> <p:knows> <n:b> .

<n:b> <p:knows> <n:c> .
|} in
  match Ntriples.parse src with
  | Ok g -> check Alcotest.int "two triples" 2 (Graph.cardinal g)
  | Error e -> Alcotest.fail e

let test_ntriples_errors () =
  let bad src =
    match Ntriples.parse src with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "should not parse: %s" src
  in
  bad "<n:a> <p:b> <n:c>";
  bad "<n:a> <p:b> .";
  bad "n:a <p:b> <n:c> .";
  bad "<n:a> <p:b> <n:c> . extra";
  bad "<> <p:b> <n:c> ."

let ntriples_roundtrip =
  qcheck ~count:60 "N-Triples roundtrip" Testutil.small_graph (fun g ->
      match Ntriples.parse (Ntriples.to_string g) with
      | Ok g' -> Graph.equal g g'
      | Error _ -> false)

let test_ntriples_deterministic () =
  let g = Generator.social ~seed:1 ~people:10 in
  check Alcotest.string "stable output" (Ntriples.to_string g) (Ntriples.to_string g)

(* ------------------------------------------------------------------ *)
(* Encoded store                                                       *)
(* ------------------------------------------------------------------ *)

let test_encoded_matching () =
  let g = sample_graph () in
  let enc = Encoded.Encoded_graph.of_graph g in
  let dict = Encoded.Encoded_graph.dictionary enc in
  let id term = Option.get (Rdf.Dictionary.find dict term) in
  check Alcotest.int "cardinal" 4 (Encoded.Encoded_graph.cardinal enc);
  let count ?s ?p ?o () = Encoded.Encoded_graph.match_count enc ?s ?p ?o () in
  check Alcotest.int "all" 4 (count ());
  check Alcotest.int "by s" 3 (count ~s:(id (Term.iri "n:a")) ());
  check Alcotest.int "by p" 3 (count ~p:(id (Term.iri "p:knows")) ());
  check Alcotest.int "by o" 2 (count ~o:(id (Term.iri "n:c")) ());
  check Alcotest.int "s+p" 2
    (count ~s:(id (Term.iri "n:a")) ~p:(id (Term.iri "p:knows")) ());
  check Alcotest.int "p+o" 2
    (count ~p:(id (Term.iri "p:knows")) ~o:(id (Term.iri "n:c")) ());
  (* the case the three-permutation choice must get right: s and o bound,
     p wild *)
  check Alcotest.int "s+o" 1
    (count ~s:(id (Term.iri "n:a")) ~o:(id (Term.iri "n:c")) ());
  check Alcotest.int "s+p+o hit" 1
    (count ~s:(id (Term.iri "n:a")) ~p:(id (Term.iri "p:knows"))
       ~o:(id (Term.iri "n:b")) ());
  check Alcotest.int "s+p+o miss" 0
    (count ~s:(id (Term.iri "n:b")) ~p:(id (Term.iri "p:mail"))
       ~o:(id (Term.iri "n:c")) ());
  check Alcotest.bool "mem" true
    (Encoded.Encoded_graph.mem enc
       (id (Term.iri "n:a"), id (Term.iri "p:knows"), id (Term.iri "n:b")))

let encoded_matches_index =
  qcheck ~count:80 "encoded match counts = index match counts"
    Testutil.small_graph (fun g ->
      let enc = Encoded.Encoded_graph.of_graph g in
      let dict = Encoded.Encoded_graph.dictionary enc in
      let idx = Graph.to_index g in
      let terms = Term.Set.elements (Rdf.Index.terms idx) in
      let id term = Option.get (Rdf.Dictionary.find dict term) in
      List.for_all
        (fun t ->
          Rdf.Index.match_count idx ~s:t ()
          = Encoded.Encoded_graph.match_count enc ~s:(id t) ()
          && Rdf.Index.match_count idx ~p:t ()
             = Encoded.Encoded_graph.match_count enc ~p:(id t) ()
          && Rdf.Index.match_count idx ~o:t ()
             = Encoded.Encoded_graph.match_count enc ~o:(id t) ())
        terms)

(* ------------------------------------------------------------------ *)
(* Encoded homomorphism engine                                         *)
(* ------------------------------------------------------------------ *)

let encoded_hom_agrees =
  qcheck ~count:150 "encoded join engine = term-based solver"
    seed_arb (fun seed ->
      let source = Testutil.tgraph_of_seed ~triples:3 ~vars:3 seed in
      let g = Testutil.graph_of_seed ~nodes:5 ~preds:2 ~triples:12 (seed + 1) in
      let enc = Encoded.Encoded_graph.of_graph g in
      Tgraphs.Homomorphism.count ~source ~target:(Graph.to_index g) ()
      = Encoded.Encoded_hom.count_tgraph source enc)

(* The PR 3 contract: ?pre / fold / limit on the encoded solver agree
   with the term-level solver, including prefixes binding IRIs absent
   from the dictionary, the empty prefix, and the full-domain prefix. *)
let encoded_hom_pre_limit_agrees =
  qcheck ~count:220 "encoded pre/fold/limit = term-based solver"
    seed_arb (fun seed ->
      let source = Testutil.tgraph_of_seed ~triples:3 ~vars:3 seed in
      let g = Testutil.graph_of_seed ~nodes:5 ~preds:2 ~triples:12 (seed + 1) in
      let enc = Encoded.Encoded_graph.of_graph g in
      let compiled = Encoded.Encoded_hom.compile source enc in
      let target = Graph.to_index g in
      let state = Random.State.make [| seed; 99 |] in
      let vars = Variable.Set.elements (Tgraphs.Tgraph.vars source) in
      let iris = Iri.Set.elements (Graph.dom g) in
      let pick_value () =
        (* sometimes an IRI the dictionary has never seen *)
        if iris = [] || Random.State.int state 5 = 0 then Term.iri "absent:iri"
        else Term.Iri (List.nth iris (Random.State.int state (List.length iris)))
      in
      (* mode 0: empty prefix; mode 1: full-domain prefix; mode 2: random
         subset (possibly including variables outside the source, which
         both solvers must ignore) *)
      let mode = Random.State.int state 3 in
      let pre =
        let keep () =
          match mode with
          | 0 -> false
          | 1 -> true
          | _ -> Random.State.int state 2 = 0
        in
        let base =
          List.fold_left
            (fun acc v ->
              if keep () then Variable.Map.add v (pick_value ()) acc else acc)
            Variable.Map.empty vars
        in
        if mode = 2 && Random.State.int state 2 = 0 then
          Variable.Map.add (Variable.of_string "outside") (pick_value ()) base
        else base
      in
      let norm homs =
        List.sort_uniq (Variable.Map.compare Term.compare) homs
      in
      let same a b = List.equal (Variable.Map.equal Term.equal) (norm a) (norm b) in
      let term_all = Tgraphs.Homomorphism.all ~pre ~source ~target () in
      let enc_all = Encoded.Encoded_hom.all ~pre compiled in
      let agree_all = same term_all enc_all in
      let agree_count =
        Tgraphs.Homomorphism.count ~pre ~source ~target ()
        = Encoded.Encoded_hom.count ~pre compiled
      in
      let agree_exists =
        Tgraphs.Homomorphism.exists ~pre ~source ~target ()
        = Encoded.Encoded_hom.exists ~pre compiled
      in
      (* limit: right cardinality, and every returned hom is genuine *)
      let limit = 1 + Random.State.int state 3 in
      let limited = Encoded.Encoded_hom.all ~pre ~limit compiled in
      let agree_limit =
        List.length limited = min limit (List.length term_all)
        && List.for_all
             (fun h ->
               List.exists (Variable.Map.equal Term.equal h) term_all)
             limited
      in
      (* streaming fold with early exit: the first solution (if any) is a
         genuine one, delivered through the encoded pre path *)
      let first =
        Encoded.Encoded_hom.fold
          ~pre:(Encoded.Encoded_hom.encode_pre compiled pre)
          compiled ~init:None
          ~f:(fun _ arr -> (Some (Array.copy arr), `Stop))
      in
      let agree_first =
        match first, term_all with
        | None, [] -> true
        | None, _ :: _ | Some _, [] -> false
        | Some arr, _ :: _ ->
            (* decode yields the full array; restrict to the source's
               variables before comparing against the term solver *)
            let dec = Encoded.Encoded_hom.decode compiled arr in
            let dec_own =
              Variable.Map.filter
                (fun v _ -> Variable.Set.mem v (Tgraphs.Tgraph.vars source))
                dec
            in
            List.exists (Variable.Map.equal Term.equal dec_own) term_all
      in
      agree_all && agree_count && agree_exists && agree_limit && agree_first)

let test_encoded_hom_assignments () =
  let g = Generator.transitive_tournament ~n:4 ~pred:"r" in
  let enc = Encoded.Encoded_graph.of_graph g in
  let tri =
    Tgraphs.Tgraph.of_triples
      [
        Triple.make (Term.var "a") (Term.iri "p:r") (Term.var "b");
        Triple.make (Term.var "b") (Term.iri "p:r") (Term.var "c");
        Triple.make (Term.var "a") (Term.iri "p:r") (Term.var "c");
      ]
  in
  let source = Encoded.Encoded_hom.compile tri enc in
  check Alcotest.int "4 triangles" 4 (Encoded.Encoded_hom.count source);
  check Alcotest.bool "exists" true (Encoded.Encoded_hom.exists source);
  let homs = Encoded.Encoded_hom.all source in
  check Alcotest.int "all returns them" 4 (List.length homs);
  (* decoded assignments are genuine homomorphisms *)
  List.iter
    (fun h ->
      List.iter
        (fun t ->
          check Alcotest.bool "decoded hom maps triples into G" true
            (Graph.mem g (Triple.subst (fun v -> Variable.Map.find_opt v h) t)))
        (Tgraphs.Tgraph.triples tri))
    homs

let test_encoded_unsat_constant () =
  let g = Generator.path ~n:3 ~pred:"r" in
  let enc = Encoded.Encoded_graph.of_graph g in
  let absent =
    Tgraphs.Tgraph.of_triples
      [ Triple.make (Term.var "x") (Term.iri "p:nowhere") (Term.var "y") ]
  in
  let source = Encoded.Encoded_hom.compile absent enc in
  check Alcotest.int "unknown constant -> no homs" 0
    (Encoded.Encoded_hom.count source);
  let empty_pattern = Encoded.Encoded_hom.compile Tgraphs.Tgraph.empty enc in
  check Alcotest.int "empty pattern -> one empty hom" 1
    (Encoded.Encoded_hom.count empty_pattern)

(* ------------------------------------------------------------------ *)
(* Explain                                                             *)
(* ------------------------------------------------------------------ *)

let test_explain () =
  let g = Generator.social ~seed:2 ~people:30 in
  let p =
    Sparql.Parser.parse_exn
      "{ ?a p:knows ?b . OPTIONAL { ?b p:email ?m } }"
  in
  let report = Wd_core.Explain.explain p g in
  check Alcotest.int "one tree" 1 (List.length report.Wd_core.Explain.trees);
  let tree_plan = List.hd report.Wd_core.Explain.trees in
  check Alcotest.int "two nodes" 2 (List.length tree_plan);
  let root = List.hd tree_plan in
  check Alcotest.int "root depth 0" 0 root.Wd_core.Explain.depth;
  check Alcotest.int "root introduces a and b" 2
    (List.length root.Wd_core.Explain.new_vars);
  List.iter
    (fun np ->
      List.iter
        (fun tp ->
          check Alcotest.bool "estimates are non-negative" true
            (tp.Wd_core.Explain.estimated >= 0.))
        np.Wd_core.Explain.triples)
    tree_plan;
  (* rendering doesn't raise and mentions the algorithm *)
  let rendered = Fmt.str "%a" Wd_core.Explain.pp report in
  check Alcotest.bool "mentions pebble" true
    (let rec contains i =
       i + 6 <= String.length rendered
       && (String.sub rendered i 6 = "pebble" || contains (i + 1))
     in
     contains 0)

(* ------------------------------------------------------------------ *)
(* dw recognition                                                      *)
(* ------------------------------------------------------------------ *)

let test_at_most () =
  let f4 = Workload.Query_families.f_k 4 in
  check Alcotest.bool "dw(F_4) <= 1" true (Wd_core.Domination_width.at_most f4 1);
  let cc5 = [ Workload.Query_families.clique_child 5 ] in
  check Alcotest.bool "dw(cc5) <= 3 is false" false
    (Wd_core.Domination_width.at_most cc5 3);
  check Alcotest.bool "dw(cc5) <= 4" true (Wd_core.Domination_width.at_most cc5 4)

let at_most_consistent =
  qcheck ~count:50 "at_most agrees with of_forest" seed_arb (fun seed ->
      let p = Testutil.wd_pattern_of_seed ~triples:5 seed in
      let forest = Wdpt.Pattern_forest.of_algebra p in
      let dw = Wd_core.Domination_width.of_forest forest in
      Wd_core.Domination_width.at_most forest dw
      && ((dw <= 1) || not (Wd_core.Domination_width.at_most forest (dw - 1))))

let () =
  Alcotest.run "storage"
    [
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "selectivity" `Quick test_stats_selectivity;
          stats_estimates_bounded;
        ] );
      ( "ntriples",
        [
          Alcotest.test_case "parse" `Quick test_ntriples_parse;
          Alcotest.test_case "errors" `Quick test_ntriples_errors;
          Alcotest.test_case "deterministic" `Quick test_ntriples_deterministic;
          ntriples_roundtrip;
        ] );
      ( "encoded store",
        [
          Alcotest.test_case "matching" `Quick test_encoded_matching;
          encoded_matches_index;
        ] );
      ( "encoded joins",
        [
          encoded_hom_agrees;
          encoded_hom_pre_limit_agrees;
          Alcotest.test_case "assignments" `Quick test_encoded_hom_assignments;
          Alcotest.test_case "unsat constants" `Quick test_encoded_unsat_constant;
        ] );
      ("explain", [ Alcotest.test_case "report" `Quick test_explain ]);
      ( "dw recognition",
        [
          Alcotest.test_case "families" `Quick test_at_most;
          at_most_consistent;
        ] );
    ]
