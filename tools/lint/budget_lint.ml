(* Codebase discipline lint; see Lint_rules. Usage: budget_lint LIB_DIR *)

let () =
  let root =
    match Sys.argv with
    | [| _; root |] -> root
    | _ ->
        prerr_endline "usage: budget_lint LIB_DIR";
        exit 2
  in
  match Lint_rules.check_tree ~root () with
  | [] -> Fmt.pr "budget lint: %s clean@." root
  | violations ->
      List.iter (fun v -> Fmt.epr "%a@." Lint_rules.pp_violation v) violations;
      Fmt.epr "budget lint: %d violation(s)@." (List.length violations);
      exit 1
