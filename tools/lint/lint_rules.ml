type violation = { path : string; line : int; message : string }

let pp_violation ppf v = Fmt.pf ppf "%s:%d: %s" v.path v.line v.message

(* Blank out comments and string/char literals, keeping every byte
   position (newlines survive, everything else becomes a space). A
   pragmatic OCaml lexer: nested [(* *)] comments, ["..."] strings with
   backslash escapes, and ['c'] char literals (distinguished from type
   variables by lookahead). String literals inside comments are not
   special-cased — none in this tree contain a ["*)"]. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec code i =
    if i >= n then ()
    else
      match src.[i] with
      | '(' when i + 1 < n && src.[i + 1] = '*' ->
          blank i;
          blank (i + 1);
          comment 1 (i + 2)
      | '"' ->
          blank i;
          string (i + 1)
      | '\'' when i + 2 < n && src.[i + 1] <> '\\' && src.[i + 2] = '\'' ->
          blank i;
          blank (i + 1);
          blank (i + 2);
          code (i + 3)
      | '\'' when i + 1 < n && src.[i + 1] = '\\' ->
          (* escaped char literal: blank until the closing quote *)
          let rec close j =
            if j >= n then ()
            else begin
              blank j;
              if src.[j] = '\'' then code (j + 1) else close (j + 1)
            end
          in
          blank i;
          close (i + 1)
      | _ -> code (i + 1)
  and comment depth i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (depth + 1) (i + 2)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
    end
    else begin
      blank i;
      comment depth (i + 1)
    end
  and string i =
    if i >= n then ()
    else begin
      blank i;
      match src.[i] with
      | '\\' ->
          if i + 1 < n then blank (i + 1);
          string (i + 2)
      | '"' -> code (i + 1)
      | _ -> string (i + 1)
    end
  in
  code 0;
  Bytes.to_string out

let kernel_modules =
  [
    "core/domination_width.ml";
    "core/enumerate.ml";
    "core/pebble_cache.ml";
    "csp/core_of.ml";
    "csp/hom.ml";
    "encoded/encoded_hom.ml";
    "encoded/encoded_pebble.ml";
    "graphtheory/treewidth.ml";
    "optimizer/join_order.ml";
    "pebble/pebble_game.ml";
    "sparql/eval.ml";
    "storage/overlay.ml";
    "tgraph/cores.ml";
    "tgraph/homomorphism.ml";
    "wdpt/subtree.ml";
  ]

let wins_allowed rel =
  String.length rel >= 5 && String.sub rel 0 5 = "core/"
  || String.length rel >= 7 && String.sub rel 0 7 = "pebble/"

(* Raw socket I/O is confined to the server's deadline-aware wrappers:
   a bare [Unix.read]/[Unix.write] elsewhere can block forever and
   bypasses the fd accounting the fault harness leans on. The needles
   are prefixes, so [Unix.write_substring] etc. are caught too. *)
let raw_io_needles =
  [ "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.recv"; "Unix.send" ]

let raw_io_allowed rel = rel = "server/io.ml"

(* The byte-layout and mapping concerns of the compiled store are
   confined to lib/storage: everything else consumes a store through the
   closure views ([Rdf.Dictionary.of_view],
   [Encoded_graph.of_views]). A [Unix.map_file] or any [Bigarray]
   access elsewhere means the abstraction leaked — the query kernels
   must stay backend-blind. *)
let mmap_needles = [ "Unix.map_file"; "Bigarray." ]

let mmap_allowed rel =
  String.length rel >= 8 && String.sub rel 0 8 = "storage/"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Line number (1-based) of the first occurrence of [needle]. *)
let line_of ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i line =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some line
    else go (i + 1) (if hay.[i] = '\n' then line + 1 else line)
  in
  go 0 1

let default_wins_allowed = wins_allowed

let check_file ?(manifest = kernel_modules) ?(wins_allowed = wins_allowed)
    ~rel contents =
  let stripped = strip contents in
  let missing_tick =
    if
      List.mem rel manifest
      && (not (contains ~needle:"Budget.tick" stripped))
      && not (contains ~needle:"Budget.guard" stripped)
    then
      [
        {
          path = rel;
          line = 1;
          message =
            "exponential kernel module never calls Budget.tick (or \
             Budget.guard): unbounded search escapes the resource \
             discipline";
        };
      ]
    else []
  in
  let forbidden_wins =
    match line_of ~needle:"Pebble_game.wins" stripped with
    | Some line when not (wins_allowed rel) ->
        [
          {
            path = rel;
            line;
            message =
              "direct call to Pebble_game.wins outside lib/core and \
               lib/pebble: use the cached Engine entry points";
          };
        ]
    | _ -> []
  in
  let forbidden_raw_io =
    if raw_io_allowed rel then []
    else
      List.filter_map
        (fun needle ->
          match line_of ~needle stripped with
          | Some line ->
              Some
                {
                  path = rel;
                  line;
                  message =
                    Printf.sprintf
                      "raw %s outside lib/server/io.ml: socket I/O must \
                       go through the deadline-aware Io wrappers"
                      needle;
                }
          | None -> None)
        raw_io_needles
  in
  let forbidden_mmap =
    if mmap_allowed rel then []
    else
      List.filter_map
        (fun needle ->
          match line_of ~needle stripped with
          | Some line ->
              Some
                {
                  path = rel;
                  line;
                  message =
                    Printf.sprintf
                      "%s outside lib/storage: mapped-store bytes are \
                       confined there; consume stores through the \
                       Dictionary/Encoded_graph view constructors"
                      needle;
                }
          | None -> None)
        mmap_needles
  in
  missing_tick @ forbidden_wins @ forbidden_raw_io @ forbidden_mmap

let check_tree ?(manifest = kernel_modules)
    ?(wins_allowed = default_wins_allowed) ~root () =
  let files = ref [] in
  let rec walk dir rel_dir =
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        let rel =
          if rel_dir = "" then entry else rel_dir ^ "/" ^ entry
        in
        if Sys.is_directory path then walk path rel
        else if Filename.check_suffix entry ".ml" then
          files := (rel, path) :: !files)
      (Sys.readdir dir)
  in
  walk root "";
  let files = List.sort compare !files in
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let missing_manifest =
    List.filter_map
      (fun m ->
        if List.mem_assoc m files then None
        else
          Some
            {
              path = m;
              line = 1;
              message =
                "kernel module listed in the lint manifest does not \
                 exist: update tools/lint/lint_rules.ml after the rename";
            })
      manifest
  in
  missing_manifest
  @ List.concat_map
      (fun (rel, path) -> check_file ~manifest ~wins_allowed ~rel (read path))
      files
