type violation = { path : string; line : int; message : string }

let pp_violation ppf v = Fmt.pf ppf "%s:%d: %s" v.path v.line v.message

(* Blank out comments and string/char literals, keeping every byte
   position (newlines survive, everything else becomes a space). A
   pragmatic OCaml lexer: nested [(* *)] comments, ["..."] strings with
   backslash escapes, and ['c'] char literals (distinguished from type
   variables by lookahead). String literals inside comments are not
   special-cased — none in this tree contain a ["*)"]. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let rec code i =
    if i >= n then ()
    else
      match src.[i] with
      | '(' when i + 1 < n && src.[i + 1] = '*' ->
          blank i;
          blank (i + 1);
          comment 1 (i + 2)
      | '"' ->
          blank i;
          string (i + 1)
      | '\'' when i + 2 < n && src.[i + 1] <> '\\' && src.[i + 2] = '\'' ->
          blank i;
          blank (i + 1);
          blank (i + 2);
          code (i + 3)
      | '\'' when i + 1 < n && src.[i + 1] = '\\' ->
          (* escaped char literal: blank until the closing quote *)
          let rec close j =
            if j >= n then ()
            else begin
              blank j;
              if src.[j] = '\'' then code (j + 1) else close (j + 1)
            end
          in
          blank i;
          close (i + 1)
      | _ -> code (i + 1)
  and comment depth i =
    if i >= n then ()
    else if i + 1 < n && src.[i] = '(' && src.[i + 1] = '*' then begin
      blank i;
      blank (i + 1);
      comment (depth + 1) (i + 2)
    end
    else if i + 1 < n && src.[i] = '*' && src.[i + 1] = ')' then begin
      blank i;
      blank (i + 1);
      if depth = 1 then code (i + 2) else comment (depth - 1) (i + 2)
    end
    else begin
      blank i;
      comment depth (i + 1)
    end
  and string i =
    if i >= n then ()
    else begin
      blank i;
      match src.[i] with
      | '\\' ->
          if i + 1 < n then blank (i + 1);
          string (i + 2)
      | '"' -> code (i + 1)
      | _ -> string (i + 1)
    end
  in
  code 0;
  Bytes.to_string out

let kernel_modules =
  [
    "analysis/satisfiability.ml";
    "core/domination_width.ml";
    "core/enumerate.ml";
    "core/pebble_cache.ml";
    "csp/core_of.ml";
    "csp/hom.ml";
    "encoded/encoded_hom.ml";
    "encoded/encoded_pebble.ml";
    "graphtheory/treewidth.ml";
    "optimizer/join_order.ml";
    "pebble/pebble_game.ml";
    "sparql/eval.ml";
    "storage/overlay.ml";
    "tgraph/cores.ml";
    "tgraph/homomorphism.ml";
    "wdpt/subtree.ml";
  ]

let wins_allowed rel =
  String.length rel >= 5 && String.sub rel 0 5 = "core/"
  || String.length rel >= 7 && String.sub rel 0 7 = "pebble/"

(* Raw socket I/O is confined to the server's deadline-aware wrappers:
   a bare [Unix.read]/[Unix.write] elsewhere can block forever and
   bypasses the fd accounting the fault harness leans on. The needles
   are prefixes, so [Unix.write_substring] etc. are caught too. *)
let raw_io_needles =
  [ "Unix.read"; "Unix.write"; "Unix.single_write"; "Unix.recv"; "Unix.send" ]

let raw_io_allowed rel = rel = "server/io.ml"

(* The byte-layout and mapping concerns of the compiled store are
   confined to lib/storage: everything else consumes a store through the
   closure views ([Rdf.Dictionary.of_view],
   [Encoded_graph.of_views]). A [Unix.map_file] or any [Bigarray]
   access elsewhere means the abstraction leaked — the query kernels
   must stay backend-blind. *)
let mmap_needles = [ "Unix.map_file"; "Bigarray." ]

let mmap_allowed rel =
  String.length rel >= 8 && String.sub rel 0 8 = "storage/"

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Line number (1-based) of the first occurrence of [needle]. *)
let line_of ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i line =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some line
    else go (i + 1) (if hay.[i] = '\n' then line + 1 else line)
  in
  go 0 1

(* Every occurrence of [needle], as (byte offset, 1-based line). *)
let occurrences ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i line acc =
    if i + nl > hl then List.rev acc
    else
      let acc =
        if String.sub hay i nl = needle then (i, line) :: acc else acc
      in
      go (i + 1) (if hay.[i] = '\n' then line + 1 else line) acc
  in
  go 0 1 []

(* Shared-state discipline for the multi-domain build: a module that
   creates its own [Mutex.t] is advertising that it is touched from more
   than one domain, so every mutation of one of its top-level hash
   tables must be under a lock — an unguarded [Hashtbl.replace]/[add]
   next to a mutex is a data race waiting for a second domain. The
   check is lexical: from the mutation, scan back to the top-level
   binding it lives in; a [Mutex.protect] or [Mutex.lock] in between
   counts as the guard. lib/parallel houses the concurrency primitives
   themselves and is exempt. *)
let domain_safety_allowed rel =
  String.length rel >= 9 && String.sub rel 0 9 = "parallel/"

let is_ident s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '\'')
       s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "let NAME [: type] = Hashtbl.create …" at column 0 of a stripped
   line: a top-level table binding (parameterized lets — functions that
   build local tables — have their parameters between NAME and '=' and
   do not match). *)
let table_of_line line =
  if not (starts_with ~prefix:"let " line) then None
  else
    match String.index_opt line '=' with
    | None -> None
    | Some eq ->
        let rhs =
          String.trim (String.sub line (eq + 1) (String.length line - eq - 1))
        in
        if not (starts_with ~prefix:"Hashtbl.create" rhs) then None
        else
          let lhs = String.sub line 4 (eq - 4) in
          let lhs =
            match String.index_opt lhs ':' with
            | Some c -> String.sub lhs 0 c
            | None -> lhs
          in
          let name = String.trim lhs in
          if is_ident name then Some name else None

let unguarded_table_mutations ~rel stripped =
  if domain_safety_allowed rel then []
  else if not (contains ~needle:"Mutex.create" stripped) then []
  else begin
    let lines = Array.of_list (String.split_on_char '\n' stripped) in
    (* byte offset where each line starts, for the backward scans *)
    let starts = Array.make (Array.length lines) 0 in
    let _ =
      Array.iteri
        (fun i l ->
          if i + 1 < Array.length starts then
            starts.(i + 1) <- starts.(i) + String.length l + 1)
        lines
    in
    let tables =
      Array.to_list lines |> List.filter_map table_of_line
    in
    let binding_start_of line =
      (* nearest enclosing top-level binding: the last column-0 [let]
         at or above [line] (0-based index) *)
      let rec up i =
        if i < 0 then 0
        else if starts_with ~prefix:"let " lines.(i) then starts.(i)
        else up (i - 1)
      in
      up line
    in
    let boundary_ok off len =
      (* the table name must end at a word boundary — [Hashtbl.replace t]
         must not match [Hashtbl.replace t.plans] for a table [t] *)
      let j = off + len in
      j >= String.length stripped
      ||
      let c = stripped.[j] in
      not
        ((c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = '\'' || c = '.')
    in
    List.concat_map
      (fun name ->
        List.concat_map
          (fun op ->
            let needle = Printf.sprintf "Hashtbl.%s %s" op name in
            List.filter_map
              (fun (off, line) ->
                if not (boundary_ok off (String.length needle)) then None
                else
                  let start = binding_start_of (line - 1) in
                  let span = String.sub stripped start (off - start) in
                  if
                    contains ~needle:"Mutex.protect" span
                    || contains ~needle:"Mutex.lock" span
                  then None
                  else
                    Some
                      {
                        path = rel;
                        line;
                        message =
                          Printf.sprintf
                            "unguarded Hashtbl.%s on top-level table %s in \
                             a module that creates a Mutex: take the lock \
                             (Mutex.protect/Mutex.lock) before mutating \
                             shared state"
                            op name;
                      })
              (occurrences ~needle stripped))
          [ "replace"; "add" ])
      tables
  end

let default_wins_allowed = wins_allowed

let check_file ?(manifest = kernel_modules) ?(wins_allowed = wins_allowed)
    ~rel contents =
  let stripped = strip contents in
  let missing_tick =
    if
      List.mem rel manifest
      && (not (contains ~needle:"Budget.tick" stripped))
      && not (contains ~needle:"Budget.guard" stripped)
    then
      [
        {
          path = rel;
          line = 1;
          message =
            "exponential kernel module never calls Budget.tick (or \
             Budget.guard): unbounded search escapes the resource \
             discipline";
        };
      ]
    else []
  in
  let forbidden_wins =
    match line_of ~needle:"Pebble_game.wins" stripped with
    | Some line when not (wins_allowed rel) ->
        [
          {
            path = rel;
            line;
            message =
              "direct call to Pebble_game.wins outside lib/core and \
               lib/pebble: use the cached Engine entry points";
          };
        ]
    | _ -> []
  in
  let forbidden_raw_io =
    if raw_io_allowed rel then []
    else
      List.filter_map
        (fun needle ->
          match line_of ~needle stripped with
          | Some line ->
              Some
                {
                  path = rel;
                  line;
                  message =
                    Printf.sprintf
                      "raw %s outside lib/server/io.ml: socket I/O must \
                       go through the deadline-aware Io wrappers"
                      needle;
                }
          | None -> None)
        raw_io_needles
  in
  let forbidden_mmap =
    if mmap_allowed rel then []
    else
      List.filter_map
        (fun needle ->
          match line_of ~needle stripped with
          | Some line ->
              Some
                {
                  path = rel;
                  line;
                  message =
                    Printf.sprintf
                      "%s outside lib/storage: mapped-store bytes are \
                       confined there; consume stores through the \
                       Dictionary/Encoded_graph view constructors"
                      needle;
                }
          | None -> None)
        mmap_needles
  in
  missing_tick @ forbidden_wins @ forbidden_raw_io @ forbidden_mmap
  @ unguarded_table_mutations ~rel stripped

let check_tree ?(manifest = kernel_modules)
    ?(wins_allowed = default_wins_allowed) ~root () =
  let files = ref [] in
  let rec walk dir rel_dir =
    Array.iter
      (fun entry ->
        let path = Filename.concat dir entry in
        let rel =
          if rel_dir = "" then entry else rel_dir ^ "/" ^ entry
        in
        if Sys.is_directory path then walk path rel
        else if Filename.check_suffix entry ".ml" then
          files := (rel, path) :: !files)
      (Sys.readdir dir)
  in
  walk root "";
  let files = List.sort compare !files in
  let read path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let missing_manifest =
    List.filter_map
      (fun m ->
        if List.mem_assoc m files then None
        else
          Some
            {
              path = m;
              line = 1;
              message =
                "kernel module listed in the lint manifest does not \
                 exist: update tools/lint/lint_rules.ml after the rename";
            })
      manifest
  in
  missing_manifest
  @ List.concat_map
      (fun (rel, path) -> check_file ~manifest ~wins_allowed ~rel (read path))
      files
