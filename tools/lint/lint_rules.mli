(** The codebase discipline lint, run by [dune runtest] (see the rule in
    [tools/lint/dune]):

    - every exponential kernel module listed in {!kernel_modules} must
      call [Budget.tick] (or go through [Budget.guard]) so that no
      exponential loop can run unbounded — the PR-1 discipline;
    - [Pebble_game.wins] may only be called under [lib/core] and
      [lib/pebble]: everything else must go through the cached engine
      entry points, never the raw game;
    - [Unix.map_file] and [Bigarray] are confined to [lib/storage]: the
      rest of the tree consumes a compiled store only through the
      closure views, keeping the query kernels backend-blind;
    - a module (outside [lib/parallel]) that creates a [Mutex.t] must
      not mutate a top-level [Hashtbl] unguarded: every
      [Hashtbl.replace]/[Hashtbl.add] on a [let name = Hashtbl.create …]
      table needs a [Mutex.protect]/[Mutex.lock] between the enclosing
      top-level binding's start and the mutation — the mutex advertises
      multi-domain use, so a bare mutation is a data race.

    Matching is performed on source text with OCaml comments and string
    literals blanked out, so mentions in documentation or error messages
    do not count. *)

type violation = { path : string; line : int; message : string }

val pp_violation : violation Fmt.t
(** [path:line: message] — clickable in editors and CI logs. *)

val strip : string -> string
(** Blank out OCaml comments (nested) and string/char literals,
    preserving byte positions and newlines, so that [line] numbers of
    matches in the result are those of the original source. *)

val kernel_modules : string list
(** Paths relative to the scanned root ([lib/]) of the modules housing
    exponential search: these must tick a budget. *)

val wins_allowed : string -> bool
(** Whether this root-relative path may call [Pebble_game.wins]. *)

val check_file :
  ?manifest:string list ->
  ?wins_allowed:(string -> bool) ->
  rel:string ->
  string ->
  violation list
(** Lint one file's contents; [rel] is its path relative to the root. *)

val check_tree :
  ?manifest:string list ->
  ?wins_allowed:(string -> bool) ->
  root:string ->
  unit ->
  violation list
(** Lint every [.ml] file under [root] (recursively, sorted), and report
    any manifest entry that does not exist on disk — a renamed kernel
    silently escaping the discipline is itself a violation. The optional
    parameters override the manifest and allow-list (used by the tests to
    seed violations in a scratch tree). *)
